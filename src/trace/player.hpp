// trace_player: re-emits a stored trace into any execution_listener +
// access_sink pair — detection without executing user code.
//
// The player is the inverse of trace_recorder: flattened sync_begin /
// sync_child runs are reassembled into a single sync_event (children in
// spawn order, join strands in span order) before on_sync fires, so a
// replayed backend observes a stream bit-identical to the live one.
//
// Access events are BATCHED: a run of consecutive read/write events (the
// dominant shape of real traces — kernels issue long access runs between
// dag events) is accumulated and handed to the sink as one
// on_accesses(span) call instead of one virtual on_read/on_write per
// event. Each batch element carries the recorded granule base address; the
// batch's byte width is the header's granule. Replaying under the same
// granule reproduces the live shadow behavior — and therefore the race
// report — exactly. (The sink's ACCESS COUNT can exceed the live run's: an
// access that spanned g granules was recorded as g events and replays as g
// batch elements, so per-access tallies like detector::access_count() are
// upper bounds under replay, while every granule-keyed result is
// identical.)
#pragma once

#include <cstdint>
#include <functional>

#include "detect/hooks.hpp"
#include "detect/sampling.hpp"
#include "runtime/events.hpp"
#include "trace/event.hpp"

namespace frd::trace {

class trace_player {
 public:
  // batch_capacity bounds the access runs handed to the sink in one
  // on_accesses call (clamped to >= 1); session::options::replay_batch and
  // bench/replay_throughput --batch-size plumb through here.
  explicit trace_player(trace_source& src,
                        std::size_t batch_capacity = kDefaultBatchCapacity)
      : src_(src), batch_capacity_(batch_capacity < 1 ? 1 : batch_capacity) {}

  struct stats {
    std::uint64_t events = 0;    // trace events consumed
    std::uint64_t accesses = 0;  // read/write events decoded (incl. dropped)
    // Accesses the armed prefilter dropped before batching; the caller owes
    // these to detector::note_prefiltered so its counters match the
    // unfiltered path. Always 0 with the filter disarmed.
    std::uint64_t prefiltered = 0;
  };

  // Granule-sampling carve-out applied BEFORE an access enters a batch
  // (DESIGN.md §9): with an armed filter, a sampled-out event costs one
  // decode and one hash instead of a batch slot plus the sink's on_accesses
  // scan — the proportional-throughput half of sampling mode.
  // session::replay installs the detector's replay_prefilter() here; the
  // decision function is shared (detect/sampling.hpp), so the dropped set
  // is exactly the set the detector would have skipped in-protocol.
  void set_prefilter(const detect::sampling::granule_prefilter& f) {
    prefilter_ = f;
  }

  // Running drop tally of the current/last play() — what stats.prefiltered
  // reports at the end, readable even when a checkpoint callback aborted
  // the replay mid-stream (session::replay settles the detector's counters
  // from here on the exception path too).
  std::uint64_t prefiltered_so_far() const { return prefiltered_; }

  // Drains the source, emitting into `listener` (dag events) and `sink`
  // (accesses); either may be null to replay one half of the stream. Throws
  // trace_error on malformed input (e.g. a sync_child run cut short).
  stats play(rt::execution_listener* listener,
             detect::hooks::access_sink* sink);

  // Like play(), with a periodic checkpoint: `checkpoint` fires with the
  // running stats roughly every `every_events` consumed events (never inside
  // a flattened sync run, so the stream the listener saw is always
  // well-formed at the callback). An exception thrown by the checkpoint
  // aborts the replay and propagates — the ingest daemon's budget
  // enforcement cancels over-budget streams exactly this way.
  stats play(rt::execution_listener* listener, detect::hooks::access_sink* sink,
             std::uint64_t every_events,
             const std::function<void(const stats&)>& checkpoint);

  // Default longest run handed to the sink in one on_accesses call; bounds
  // the batch buffer while keeping the per-call amortization (real runs are
  // usually shorter than this between dag events).
  static constexpr std::size_t kDefaultBatchCapacity = 256;
  // The capacity session::options::replay_batch == 0 resolves to under
  // parallel detection (workers > 1): each batched run pays a fixed
  // fan-out/merge cost of roughly one task per worker, so parallel replay
  // wants longer runs than the serial default. Dag events still flush
  // whatever has accumulated — the epoch barrier is never deferred — and
  // the report stays batch-size-independent.
  static constexpr std::size_t kParallelBatchCapacity = 4096;

  std::size_t batch_capacity() const { return batch_capacity_; }

 private:
  trace_source& src_;
  std::size_t batch_capacity_;
  detect::sampling::granule_prefilter prefilter_{};  // disarmed by default
  std::uint64_t prefiltered_ = 0;  // survives a mid-replay abort
};

}  // namespace frd::trace
