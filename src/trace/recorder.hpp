// trace_recorder: captures one detection run losslessly into a trace_sink.
//
// It is both an execution_listener (attached to the recording session's
// runtime, next to the detector) and an access_sink (installed as the hook
// sink, in front of the detector) so dag-growth events and memory accesses
// land in the sink interleaved in true program order — exactly the order the
// player re-emits them in.
//
// on_sync is flattened (event.hpp): one sync_begin plus count sync_child
// events, children and join strands paired positionally. Accesses are
// granule-normalized: each access becomes one read/write event per touched
// granule, carrying the granule base address; the granule used must match
// the trace header the sink was created with (frd::session wires both from
// its own options).
#pragma once

#include <cstdint>

#include "detect/hooks.hpp"
#include "runtime/events.hpp"
#include "trace/event.hpp"

namespace frd::trace {

class trace_recorder final : public rt::execution_listener,
                             public detect::hooks::access_sink {
 public:
  // `granule` must be a power of two in [1, 4096] (throws trace_error).
  trace_recorder(trace_sink& out, std::size_t granule);

  // Downstream access sink accesses are forwarded to after recording (the
  // recording session's detector); null records without detecting.
  void set_next(detect::hooks::access_sink* next) { next_ = next; }

  std::uint64_t events_recorded() const { return events_; }

  // execution_listener --------------------------------------------------
  void on_program_begin(rt::func_id f, rt::strand_id s) override;
  void on_program_end(rt::strand_id s) override;
  void on_strand_begin(rt::strand_id s, rt::func_id f) override;
  void on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                rt::strand_id v) override;
  void on_create(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                 rt::strand_id v) override;
  void on_return(rt::func_id c, rt::strand_id last, rt::func_id p) override;
  void on_sync(const sync_event& e) override;
  void on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v, rt::func_id fut,
              rt::strand_id w, rt::strand_id creator) override;

  // access_sink ---------------------------------------------------------
  void on_read(const void* p, std::size_t bytes) override;
  void on_write(const void* p, std::size_t bytes) override;
  // Batched entry point (the online pump's access path): elements are
  // already granule base addresses `bytes` wide, so each records as exactly
  // one event and the whole batch forwards to the downstream sink in one
  // call — the detector stays on its batched hot path while recording.
  void on_accesses(std::span<const detect::hooks::access> batch,
                   std::size_t bytes) override;

 private:
  void put(const trace_event& e) {
    out_.put(e);
    ++events_;
  }
  void record_access(event_kind kind, const void* p, std::size_t bytes);

  trace_sink& out_;
  detect::hooks::access_sink* next_ = nullptr;
  const std::size_t granule_;
  const std::uintptr_t granule_mask_;
  std::uint64_t events_ = 0;
};

}  // namespace frd::trace
