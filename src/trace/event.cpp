#include "trace/event.hpp"

namespace frd::trace {

namespace {

struct kind_desc {
  int n;
  const char* names[kMaxEventFields];
};

// Field order here IS the wire order of both codecs; never reorder within a
// trace version.
const kind_desc kDescs[kEventKindCount] = {
    /*program_begin*/ {2, {"main_fn", "first"}},
    /*program_end*/ {1, {"last"}},
    /*strand_begin*/ {2, {"s", "owner"}},
    /*spawn*/ {5, {"parent", "u", "child", "w", "v"}},
    /*create*/ {5, {"parent", "u", "child", "w", "v"}},
    /*ret*/ {3, {"child", "last", "parent"}},
    /*sync_begin*/ {3, {"fn", "before", "count"}},
    /*sync_child*/
    {6, {"child", "fork_strand", "child_first", "child_last", "cont_first",
         "join_strand"}},
    /*get*/ {6, {"fn", "u", "v", "fut", "w", "creator"}},
    /*read*/ {1, {"addr"}},
    /*write*/ {1, {"addr"}},
};

std::uint32_t narrow32(std::uint64_t v, event_kind k) {
  if (v > 0xffffffffull) {
    throw trace_error("trace field overflows 32-bit id in a '" +
                      std::string(to_string(k)) + "' event");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

int field_count(event_kind k) { return kDescs[static_cast<int>(k)].n; }

const char* const* field_names(event_kind k) {
  return kDescs[static_cast<int>(k)].names;
}

event_fields fields_of(const trace_event& e) {
  event_fields f;
  f.n = field_count(e.kind);
  switch (e.kind) {
    case event_kind::program_begin:
      f.v[0] = e.program_begin.main_fn;
      f.v[1] = e.program_begin.first;
      break;
    case event_kind::program_end:
      f.v[0] = e.program_end.last;
      break;
    case event_kind::strand_begin:
      f.v[0] = e.strand_begin.s;
      f.v[1] = e.strand_begin.owner;
      break;
    case event_kind::spawn:
    case event_kind::create:
      f.v[0] = e.fork.parent;
      f.v[1] = e.fork.u;
      f.v[2] = e.fork.child;
      f.v[3] = e.fork.w;
      f.v[4] = e.fork.v;
      break;
    case event_kind::ret:
      f.v[0] = e.ret.child;
      f.v[1] = e.ret.last;
      f.v[2] = e.ret.parent;
      break;
    case event_kind::sync_begin:
      f.v[0] = e.sync_begin.fn;
      f.v[1] = e.sync_begin.before;
      f.v[2] = e.sync_begin.count;
      break;
    case event_kind::sync_child:
      f.v[0] = e.sync_child.child;
      f.v[1] = e.sync_child.fork_strand;
      f.v[2] = e.sync_child.child_first;
      f.v[3] = e.sync_child.child_last;
      f.v[4] = e.sync_child.cont_first;
      f.v[5] = e.sync_child.join_strand;
      break;
    case event_kind::get:
      f.v[0] = e.get.fn;
      f.v[1] = e.get.u;
      f.v[2] = e.get.v;
      f.v[3] = e.get.fut;
      f.v[4] = e.get.w;
      f.v[5] = e.get.creator;
      break;
    case event_kind::read:
    case event_kind::write:
      f.v[0] = e.access.addr;
      break;
  }
  return f;
}

trace_event event_from(event_kind k, const event_fields& f) {
  if (f.n != field_count(k)) {
    throw trace_error("wrong field count for a '" + std::string(to_string(k)) +
                      "' event: got " + std::to_string(f.n) + ", want " +
                      std::to_string(field_count(k)));
  }
  trace_event e;
  e.kind = k;
  switch (k) {
    case event_kind::program_begin:
      e.program_begin = {narrow32(f.v[0], k), narrow32(f.v[1], k)};
      break;
    case event_kind::program_end:
      e.program_end = {narrow32(f.v[0], k)};
      break;
    case event_kind::strand_begin:
      e.strand_begin = {narrow32(f.v[0], k), narrow32(f.v[1], k)};
      break;
    case event_kind::spawn:
    case event_kind::create:
      e.fork = {narrow32(f.v[0], k), narrow32(f.v[1], k), narrow32(f.v[2], k),
                narrow32(f.v[3], k), narrow32(f.v[4], k)};
      break;
    case event_kind::ret:
      e.ret = {narrow32(f.v[0], k), narrow32(f.v[1], k), narrow32(f.v[2], k)};
      break;
    case event_kind::sync_begin:
      e.sync_begin = {narrow32(f.v[0], k), narrow32(f.v[1], k),
                      narrow32(f.v[2], k)};
      break;
    case event_kind::sync_child:
      e.sync_child = {narrow32(f.v[0], k), narrow32(f.v[1], k),
                      narrow32(f.v[2], k), narrow32(f.v[3], k),
                      narrow32(f.v[4], k), narrow32(f.v[5], k)};
      break;
    case event_kind::get:
      e.get = {narrow32(f.v[0], k), narrow32(f.v[1], k), narrow32(f.v[2], k),
               narrow32(f.v[3], k), narrow32(f.v[4], k), narrow32(f.v[5], k)};
      break;
    case event_kind::read:
    case event_kind::write:
      e.access = {f.v[0]};
      break;
  }
  return e;
}

bool operator==(const trace_event& a, const trace_event& b) {
  if (a.kind != b.kind) return false;
  const event_fields fa = fields_of(a);
  const event_fields fb = fields_of(b);
  for (int i = 0; i < fa.n; ++i) {
    if (fa.v[i] != fb.v[i]) return false;
  }
  return true;
}

}  // namespace frd::trace
