#include "api/session.hpp"

#include "support/check.hpp"

namespace frd {

session::session(options opt) : opt_(std::move(opt)) {
  const detect::backend_registry& reg = detect::backend_registry::instance();
  info_ = &reg.at(opt_.backend);  // throws backend_error listing names
  det_ = std::make_unique<detect::detector>(
      info_->make(), detect::detector_config{
                         .lvl = opt_.level,
                         .granule = opt_.granule,
                         .max_retained_races = opt_.max_retained_races,
                         .shadow_page_bits = opt_.shadow_page_bits,
                         .futures = info_->futures,
                     });
}

session::~session() = default;

void session::add_listener(rt::execution_listener* l) {
  FRD_CHECK_MSG(rt_ == nullptr,
                "add_listener must run before the session's runtime is built "
                "(first runtime()/run() call)");
  FRD_CHECK_MSG(l != nullptr, "null execution listener");
  extras_.push_back(l);
}

rt::serial_runtime& session::runtime() {
  if (rt_ == nullptr) {
    rt::execution_listener* listener = nullptr;
    const bool track = opt_.level != detect::level::baseline;
    if (track && extras_.empty()) {
      listener = det_.get();
    } else if (track || !extras_.empty()) {
      mux_ = std::make_unique<rt::listener_mux>();
      if (track) mux_->add(det_.get());
      for (rt::execution_listener* l : extras_) mux_->add(l);
      listener = mux_.get();
    }
    rt_ = std::make_unique<rt::serial_runtime>(listener);
    rt_->enforce_single_touch(opt_.enforce_single_touch);
  }
  return *rt_;
}

}  // namespace frd
