#include "api/session.hpp"

#include "support/check.hpp"
#include "trace/event.hpp"
#include "trace/player.hpp"
#include "trace/recorder.hpp"

namespace frd {

session::session(options opt) : opt_(std::move(opt)) {
  if (opt_.runtime == runtime_kind::serial && opt_.runtime_workers != 0) {
    throw detect::backend_error(
        "runtime_workers parallelizes the program and needs runtime = "
        "parallel; the serial runtime has exactly one worker (did you mean "
        "detect_workers?)");
  }
  if (opt_.runtime_workers > 256) {
    throw detect::backend_error("runtime_workers must be in [0, 256]");
  }
  const detect::backend_registry& reg = detect::backend_registry::instance();
  info_ = &reg.at(opt_.backend);  // throws backend_error listing names
  det_ = std::make_unique<detect::detector>(
      info_->make(), detect::detector_config{
                         .lvl = opt_.level,
                         .granule = opt_.granule,
                         .max_retained_races = opt_.max_retained_races,
                         .shadow_store = opt_.shadow_store,
                         .shadow_page_bits = opt_.shadow_page_bits,
                         .shadow_shard_bits = opt_.shadow_shard_bits,
                         .workers = opt_.detect_workers,
                         .sample_rate = opt_.sample_rate,
                         .sample_seed = opt_.sample_seed,
                         .sampling = opt_.sampling,
                         .shadow_history_depth = opt_.shadow_history_depth,
                         .futures = info_->futures,
                     });
  sink_ = det_.get();
}

session::~session() = default;

void session::add_listener(rt::execution_listener* l) {
  FRD_CHECK_MSG(rt_ == nullptr,
                "add_listener must run before the session's runtime is built "
                "(first runtime()/run() call)");
  FRD_CHECK_MSG(l != nullptr, "null execution listener");
  extras_.push_back(l);
}

void session::record_to(trace::trace_sink& out) {
  FRD_CHECK_MSG(rt_ == nullptr,
                "record_to must run before the session's runtime is built "
                "(first runtime()/run() call)");
  FRD_CHECK_MSG(mode_ == session_mode::live,
                "a session records or replays exactly once");
  recorder_ = std::make_unique<trace::trace_recorder>(out, opt_.granule);
  recorder_->set_next(det_.get());
  sink_ = recorder_.get();
  mode_ = session_mode::record;
}

std::uint64_t session::replay(trace::trace_source& src) {
  return replay(src, replay_checkpoint{});
}

std::uint64_t session::replay(trace::trace_source& src,
                              const replay_checkpoint& cp) {
  FRD_CHECK_MSG(rt_ == nullptr,
                "replay needs a fresh session: this one already built its "
                "runtime (run() was called or recording is set up)");
  FRD_CHECK_MSG(mode_ == session_mode::live,
                "a session records or replays exactly once (reset() first)");
  if (src.header().granule != opt_.granule) {
    throw trace::trace_error(
        "trace was recorded at granule " + std::to_string(src.header().granule) +
        " but this session detects at granule " + std::to_string(opt_.granule) +
        "; construct the session with the trace's granule");
  }
  mode_ = session_mode::replay;
  std::size_t batch = opt_.replay_batch;
  if (batch == 0) {
    batch = opt_.detect_workers > 1
                ? trace::trace_player::kParallelBatchCapacity
                : trace::trace_player::kDefaultBatchCapacity;
  }
  trace::trace_player player(src, batch);
  // Granule-sampling replay fast path: sampled-out accesses drop inside the
  // player, and the tally is handed back so the detector's access count and
  // skipped counter equal the in-protocol carve-out's (DESIGN.md §9). The
  // filter is disarmed at rate 1.0 and under the epoch policy.
  player.set_prefilter(det_->replay_prefilter());
  trace::trace_player::stats st;
  try {
    if (cp.every_events == 0 || !cp.fn) {
      st = player.play(build_listener(), det_.get());
    } else {
      st = player.play(build_listener(), det_.get(), cp.every_events,
                       [&](const trace::trace_player::stats& running) {
                         cp.fn(running.events, running.accesses);
                       });
    }
  } catch (...) {
    // An aborted replay (e.g. the ingest daemon's budget cancel throwing
    // from the checkpoint) still settles the drop tally, so the counter
    // invariant sampled + skipped == access_count holds at every exit.
    det_->note_prefiltered(player.prefiltered_so_far());
    throw;
  }
  det_->note_prefiltered(st.prefiltered);
  return st.events;
}

// Pristine state, same options: the detector resets in place (fresh backend
// instance, fresh shadow store, cleared report and caches), the runtime /
// recorder / mux / extra listeners are dropped entirely — they are
// per-run wiring, and the next run rebuilds them. The backend_info pointer
// and options survive, so a pooled session recycles without re-resolving
// anything.
void session::reset() {
  det_->reset(info_->make());
  recorder_.reset();
  mux_.reset();
  rt_.reset();
  extras_.clear();
  mode_ = session_mode::live;
  sink_ = det_.get();
}

// The one definition of who observes this session's event stream — live
// runs and replays must wire identically or their reports diverge. At
// level::baseline the detector gets no dag events (the paper's zero-work
// configuration); the recorder (record mode) and extras always listen.
rt::execution_listener* session::build_listener() {
  const bool track = opt_.level != detect::level::baseline;
  if (track && extras_.empty() && recorder_ == nullptr) return det_.get();
  if (track || !extras_.empty() || recorder_ != nullptr) {
    mux_ = std::make_unique<rt::listener_mux>();
    if (track) mux_->add(det_.get());
    if (recorder_ != nullptr) mux_->add(recorder_.get());
    for (rt::execution_listener* l : extras_) mux_->add(l);
    return mux_.get();
  }
  return nullptr;
}

rt::serial_runtime& session::runtime() {
  FRD_CHECK_MSG(mode_ != session_mode::replay,
                "a replay session has no runtime: the trace stands in for "
                "the program");
  FRD_CHECK_MSG(opt_.runtime == runtime_kind::serial,
                "this session is configured with runtime = parallel; the "
                "parallel runtime is per-run wiring — pass run() a program "
                "body or a runtime-generic driver instead of calling "
                "runtime()");
  if (rt_ == nullptr) {
    rt_ = std::make_unique<rt::serial_runtime>(build_listener());
    rt_->enforce_single_touch(opt_.enforce_single_touch);
  }
  return *rt_;
}

}  // namespace frd
