// frd::session — the public facade of FutureRD.
//
// One session = one detection run: it owns the reachability backend
// (resolved by name through the backend_registry), the detection core, the
// serial runtime the program executes on, and the race report; run()
// installs the session's hook sink RAII-style so instrumented kernels route
// into this session's detector for exactly the duration of the run, and
// stacked sessions unwind to the enclosing session's sink.
//
//   frd::session s({.backend = "multibags+",
//                   .level = frd::level::full,
//                   .granule = 4,
//                   .max_retained_races = 64});
//   s.run([&] {
//     auto f = s.runtime().create_future([&] { ... });
//     ...
//     f.get();
//   });
//   if (s.report().any()) ...
//
// run() accepts either a program body (no arguments; executed under
// runtime().run) or a driver taking the runtime by reference (for harnesses
// whose kernels call rt.run themselves); both run with the hook sink
// installed. With options::runtime = parallel the program instead executes
// on the work-stealing scheduler with detection attached live through the
// online pump (src/online/, DESIGN.md §10); drivers must then be
// runtime-generic (a generic lambda or runtime-templated kernel).
//
// A session runs in one of three explicit modes (session_mode):
//
//   live     the default — detect while the program executes.
//   record   record_to(sink) before run(): the run is additionally captured
//            losslessly as a trace (dag events + granule-normalized
//            accesses) while detecting as usual.
//   replay   replay(source) instead of run(): detection consumes a stored
//            trace; no user code executes. Replaying a trace under the same
//            backend and granule yields a race report identical to the live
//            run that recorded it.
//
// A session performs one detection run — the ids the runtime mints are
// one-shot — but the OBJECT is recyclable: reset() returns it to the
// pristine post-construction state under the same options (fresh backend
// and shadow state, cleared report and caches), after which it can run,
// record, or replay again. The ingest daemon's session pool (src/serve/)
// recycles sessions across client streams exactly this way; everyone else
// can keep constructing a fresh session per run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "detect/detector.hpp"
#include "detect/hooks.hpp"
#include "detect/registry.hpp"
#include "online/engine.hpp"
#include "online/runtime.hpp"
#include "runtime/serial.hpp"
#include "support/check.hpp"

namespace frd {

namespace trace {
class trace_sink;
class trace_source;
class trace_recorder;
class trace_player;
}  // namespace trace

using detect::level;

// Which runtime executes the session's program in run(): the serial
// depth-first runtime (the paper's detection substrate, §2) or the
// work-stealing parallel runtime with the online detection pump attached
// (src/online/; DESIGN.md §10). Replay has no runtime and ignores this.
enum class runtime_kind : std::uint8_t { serial, parallel };

constexpr std::string_view to_string(runtime_kind k) {
  switch (k) {
    case runtime_kind::serial: return "serial";
    case runtime_kind::parallel: return "parallel";
  }
  return "?";
}

// How a session consumes its event stream (see the header comment).
enum class session_mode : std::uint8_t { live, record, replay };

constexpr std::string_view to_string(session_mode m) {
  switch (m) {
    case session_mode::live: return "live";
    case session_mode::record: return "record";
    case session_mode::replay: return "replay";
  }
  return "?";
}

class session {
 public:
  struct options {
    std::string backend = "multibags+";
    detect::level level = detect::level::full;
    // Shadow granule size in bytes (power of two; 4 = the paper's artifact).
    std::size_t granule = 4;
    // Full race records kept for diagnostics (counting dedupes regardless).
    std::size_t max_retained_races = detect::race_report::kDefaultRetained;
    // Shadow-memory store (shadow::store_registry key): "hashed-page" (the
    // two-level baseline), "sharded" (address-hashed shards, sized by
    // shadow_shard_bits), or "compact" (SoA pages + arena overflow). Every
    // store yields the identical race report; they differ in layout and
    // scaling headroom (README "Shadow-memory stores").
    std::string shadow_store = std::string(shadow::kDefaultStore);
    unsigned shadow_page_bits = 16;
    // Sharded stores: 2^shadow_shard_bits shards; ignored elsewhere.
    unsigned shadow_shard_bits = 4;
    // Replay only: longest run of access events handed to the detector in
    // one batched on_accesses call (trace_player::kDefaultBatchCapacity).
    // Also bounds how many accesses share one batched reachability query;
    // bench/replay_throughput --batch-size sweeps it. 0 = auto: the player
    // default serially, trace_player::kParallelBatchCapacity when workers
    // > 1 (longer runs amortize the per-run fan-out/merge cost). The race
    // report is batch-size-independent either way.
    std::size_t replay_batch = 256;
    // Parallel replay detection: workers the detector fans each batched
    // access run out to (detector_config::workers). >1 requires the
    // "sharded" shadow store with shadow_shard_bits >= 1; reports stay
    // byte-identical to workers == 1. Live (non-replay) runs detect
    // serially regardless. Renamed from `workers` (deprecated) so the
    // detect-phase knob cannot be confused with runtime_workers — see the
    // README/DESIGN deprecation note (`frd-trace run --workers` vs
    // `frd-trace exec --runtime-workers`).
    unsigned detect_workers = 1;
    // Which runtime run() executes the program on. serial is the paper's
    // substrate; parallel runs the program on the work-stealing scheduler
    // with detection live via the online pump (DESIGN.md §10). run() then
    // requires a program body or a runtime-generic driver (one invocable
    // with online::runtime&).
    runtime_kind runtime = runtime_kind::serial;
    // Scheduler width for runtime == parallel (0 = hardware concurrency).
    // Distinct from detect_workers: this parallelizes the *program*, that
    // parallelizes replay *detection*.
    unsigned runtime_workers = 0;
    // Sampling mode (DESIGN.md §9): run the full §3 protocol on a seeded,
    // reproducible fraction of accesses; sampled-out accesses skip the
    // shadow store and the reachability query entirely. Must be in (0, 1];
    // 1.0 disarms sampling and keeps reports byte-identical to a detector
    // without the knob. The policy keys the decision on the granule
    // address (default: a granule is always or never watched, the sampled
    // report is a strict subset of the full one) or on the dag-event epoch
    // (whole windows admitted or skipped together).
    double sample_rate = 1.0;
    std::uint64_t sample_seed = 1;
    detect::sample_policy sampling = detect::sample_policy::granule;
    // Bounded-history mode: retained readers per granule
    // (kUnboundedHistory = the full §3 list; finite depth >= 1 keeps the
    // most recent readers, bounding memory and purge cost — short-race-
    // window detection). Depth 0 is a configuration error.
    std::size_t shadow_history_depth = shadow::kUnboundedHistory;
    // Abort on a second get() of the same future handle (paper §2's
    // structured single-touch restriction, enforced by the runtime).
    bool enforce_single_touch = false;
  };

  session() : session(options{}) {}
  explicit session(std::string backend_name)
      : session(options{.backend = std::move(backend_name)}) {}
  explicit session(const char* backend_name)
      : session(options{.backend = backend_name}) {}
  // Throws detect::backend_error when options::backend is not registered.
  explicit session(options opt);
  ~session();
  session(const session&) = delete;
  session& operator=(const session&) = delete;

  // Additional execution listeners (oracles, dag recorders) observing this
  // session's run. Must be called before runtime() / run() / replay().
  void add_listener(rt::execution_listener* l);

  // Switches the session into record mode: the next run() is captured into
  // `out` (dag events + accesses, normalized to this session's granule)
  // while detection proceeds as usual. `out` must outlive the session's
  // runs. Must be called before runtime() / run(); a session records or
  // replays, never both.
  void record_to(trace::trace_sink& out);

  // Replay mode: drains `src` through this session's detector — no user
  // code executes, run() must not be called. One-shot like run(). Throws
  // trace::trace_error when the trace's granule differs from this session's
  // (the shadow behavior would silently diverge otherwise). Extra listeners
  // added via add_listener() observe the replayed stream too. Returns the
  // number of trace events consumed.
  //
  // The race report and get_count() match the recorded live run exactly.
  // access_count() counts sink calls, and a replayed stream makes one call
  // per recorded granule event — so it exceeds the live count when accesses
  // spanned granule boundaries at record time.
  std::uint64_t replay(trace::trace_source& src);

  // Periodic observation hook for long replays: `fn` fires with the running
  // (events, accesses) totals roughly every `every_events` consumed events.
  // An exception thrown from the callback aborts the replay and propagates
  // out of replay() — the ingest daemon enforces per-stream memory budgets
  // by throwing here. every_events == 0 (or a null fn) disables it.
  struct replay_checkpoint {
    std::uint64_t every_events = 0;
    std::function<void(std::uint64_t events, std::uint64_t accesses)> fn;
  };
  std::uint64_t replay(trace::trace_source& src, const replay_checkpoint& cp);

  // Returns the session to its pristine post-construction state under the
  // same options: fresh backend and shadow store (pages and arenas
  // released), report/counters/query-plane caches cleared (retaining buffer
  // capacity), mode back to live, recorder and extra listeners detached.
  // After reset() the session can run, record, or replay again — the seam
  // that lets the ingest daemon's pool recycle sessions across streams.
  void reset();

  // Memory accounting snapshot (shadow pages, store arena bytes, report
  // capacity in use) — the counters the serve daemon's per-session budget
  // enforcement reads; `frd-trace run` prints them.
  detect::memory_stats memory_stats() const { return det_->memory(); }

  // Incremental race observer: invoked once per recorded race, in encounter
  // order (see detector::set_race_sink). Cleared by reset() — a per-run
  // capture must not fire for the next pooled stream.
  void set_race_sink(std::function<void(const detect::race&)> sink) {
    det_->set_race_sink(std::move(sink));
  }

  session_mode mode() const { return mode_; }

  // The serial runtime this session's program executes on. At
  // level::baseline the runtime carries no listener (the paper's zero-work
  // configuration). Only for runtime_kind::serial sessions: the parallel
  // runtime is per-run wiring owned by run() itself.
  rt::serial_runtime& runtime();

  // Returns whatever a runtime-driver callable returns (void for program
  // bodies), so kernels can hand their answer straight out:
  //   int got = s.run([&](rt::serial_runtime& rt) { return kernel(rt); });
  //
  // Dispatch by options::runtime and the callable's shape:
  //   - a program body (no arguments) runs under the configured runtime;
  //   - a driver invocable with BOTH rt::serial_runtime& and
  //     online::runtime& (a generic lambda / runtime-templated kernel) runs
  //     under the configured runtime — the portable form every corpus
  //     program uses;
  //   - a serial-only driver requires runtime_kind::serial, an online-only
  //     driver requires runtime_kind::parallel (hard error otherwise).
  // Under runtime_kind::parallel the run executes on the work-stealing
  // scheduler with the online pump feeding this session's detector /
  // recorder (DESIGN.md §10); online::online_error propagates from here.
  template <typename F>
  decltype(auto) run(F&& f) {
    constexpr bool serial_driver = std::is_invocable_v<F&, rt::serial_runtime&>;
    constexpr bool online_driver = std::is_invocable_v<F&, online::runtime&>;
    if constexpr (serial_driver && online_driver) {
      if (opt_.runtime == runtime_kind::parallel) {
        return run_online_driver(std::forward<F>(f));
      }
      rt::serial_runtime& rt = runtime();
      detect::hooks::scoped_sink sink(sink_);
      return f(rt);
    } else if constexpr (serial_driver) {
      FRD_CHECK_MSG(opt_.runtime == runtime_kind::serial,
                    "this driver requires the serial runtime but the session "
                    "is configured with runtime = parallel; make the driver "
                    "runtime-generic (take auto& rt) to run it online");
      rt::serial_runtime& rt = runtime();
      detect::hooks::scoped_sink sink(sink_);
      return f(rt);
    } else if constexpr (online_driver) {
      FRD_CHECK_MSG(opt_.runtime == runtime_kind::parallel,
                    "this driver requires the parallel runtime; construct "
                    "the session with runtime = parallel");
      return run_online_driver(std::forward<F>(f));
    } else {
      if (opt_.runtime == runtime_kind::parallel) {
        run_online_body(std::forward<F>(f));
      } else {
        rt::serial_runtime& rt = runtime();
        detect::hooks::scoped_sink sink(sink_);
        rt.run(std::forward<F>(f));
      }
    }
  }

  const options& opts() const { return opt_; }
  const detect::backend_info& info() const { return *info_; }
  std::string_view backend_name() const { return info_->name; }
  detect::level lvl() const { return opt_.level; }

  detect::detector& detector() { return *det_; }
  const detect::detector& detector() const { return *det_; }
  detect::reachability_backend& backend() { return det_->backend(); }
  const detect::reachability_backend& backend() const {
    return det_->backend();
  }

  const detect::race_report& report() const { return det_->report(); }
  std::uint64_t access_count() const { return det_->access_count(); }
  std::uint64_t get_count() const { return det_->get_count(); }
  std::uint64_t structured_violations() const {
    return det_->structured_violations();
  }
  // Query-plane counters: batching effectiveness of this session's
  // reachability queries (lookups, epoch-cache hits, issued batches).
  const detect::query_plane_stats& query_stats() const {
    return det_->query_stats();
  }
  // One-element wrapper over the backend's reachability_view (the query
  // plane's only scalar entry point) — for tests and diagnostics.
  bool precedes_current(rt::strand_id u) { return det_->precedes_current(u); }

  // Explicit instrumentation points — exactly what hooks::active emits.
  // Tests and uninstrumented callers mark accesses with these. In record
  // mode they route through the recorder so explicit accesses land in the
  // trace like instrumented ones.
  void read(const void* p, std::size_t bytes = 4) { sink_->on_read(p, bytes); }
  void write(const void* p, std::size_t bytes = 4) {
    sink_->on_write(p, bytes);
  }

 private:
  // Builds the listener stack (detector unless baseline, recorder, extras);
  // shared by live runs, replay, and online-parallel runs so all observe
  // identically.
  rt::execution_listener* build_listener();

  // Per-run wiring of an online-parallel run: the engine (scheduler + pump
  // wired to this session's listener stack and access sink), the program-
  // facing runtime, and the sink swap that routes s.read/s.write and the
  // hook sink through the engine's ring router for the duration. The
  // destructor restores the sink and tears the pump down even on unwind;
  // finish() surfaces pump-side errors (online_error) on the host thread.
  struct online_run {
    explicit online_run(session& s)
        : s_(s),
          eng_(online::engine::config{.workers = s.opt_.runtime_workers,
                                      .granule = s.opt_.granule,
                                      .listener = s.build_listener(),
                                      .sink = s.sink_}),
          ort_(eng_),
          saved_sink_(s.sink_),
          hook_guard_(&eng_.router()) {
      ort_.enforce_single_touch(s.opt_.enforce_single_touch);
      s.sink_ = &eng_.router();
    }
    ~online_run() {
      s_.sink_ = saved_sink_;
      eng_.abort();  // no-op when finish() already joined the pump
    }
    online::runtime& rt() { return ort_; }
    void finish() { eng_.finish(); }

    session& s_;
    online::engine eng_;
    online::runtime ort_;
    detect::hooks::access_sink* saved_sink_;
    detect::hooks::scoped_sink hook_guard_;
  };

  template <typename F>
  decltype(auto) run_online_driver(F&& f) {
    FRD_CHECK_MSG(mode_ != session_mode::replay,
                  "a replay session has no runtime: the trace stands in for "
                  "the program");
    online_run orun(*this);
    if constexpr (std::is_void_v<decltype(f(orun.rt()))>) {
      f(orun.rt());
      orun.finish();
    } else {
      decltype(auto) r = f(orun.rt());
      orun.finish();
      return r;
    }
  }

  template <typename F>
  void run_online_body(F&& f) {
    FRD_CHECK_MSG(mode_ != session_mode::replay,
                  "a replay session has no runtime: the trace stands in for "
                  "the program");
    online_run orun(*this);
    orun.rt().run(std::forward<F>(f));
    orun.finish();
  }

  options opt_;
  const detect::backend_info* info_;
  session_mode mode_ = session_mode::live;
  // The access sink run() installs: the detector, until record_to() swaps in
  // the recorder (which forwards to the detector). Cached so the live access
  // path stays one indirect call.
  detect::hooks::access_sink* sink_ = nullptr;
  std::unique_ptr<detect::detector> det_;
  std::unique_ptr<trace::trace_recorder> recorder_;
  std::vector<rt::execution_listener*> extras_;
  // Built on first use so extra listeners can be attached after
  // construction; the mux only exists when extras or a recorder are
  // present, keeping the plain live event path a single virtual call (the
  // paper's "reachability" overhead measurement).
  std::unique_ptr<rt::listener_mux> mux_;
  std::unique_ptr<rt::serial_runtime> rt_;
};

}  // namespace frd
