// frd::session — the public facade of FutureRD.
//
// One session = one detection run: it owns the reachability backend
// (resolved by name through the backend_registry), the detection core, the
// serial runtime the program executes on, and the race report; run()
// installs the session's hook sink RAII-style so instrumented kernels route
// into this session's detector for exactly the duration of the run, and
// stacked sessions unwind to the enclosing session's sink.
//
//   frd::session s({.backend = "multibags+",
//                   .level = frd::level::full,
//                   .granule = 4,
//                   .max_retained_races = 64});
//   s.run([&] {
//     auto f = s.runtime().create_future([&] { ... });
//     ...
//     f.get();
//   });
//   if (s.report().any()) ...
//
// run() accepts either a program body (no arguments; executed under
// runtime().run) or a driver taking rt::serial_runtime& (for harnesses whose
// kernels call rt.run themselves); both run with the hook sink installed.
//
// Sessions are one-shot like the ids the runtime mints: construct a fresh
// session per detection run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "detect/detector.hpp"
#include "detect/registry.hpp"
#include "runtime/serial.hpp"

namespace frd {

using detect::level;

class session {
 public:
  struct options {
    std::string backend = "multibags+";
    detect::level level = detect::level::full;
    // Shadow granule size in bytes (power of two; 4 = the paper's artifact).
    std::size_t granule = 4;
    // Full race records kept for diagnostics (counting dedupes regardless).
    std::size_t max_retained_races = detect::race_report::kDefaultRetained;
    unsigned shadow_page_bits = 16;
    // Abort on a second get() of the same future handle (paper §2's
    // structured single-touch restriction, enforced by the runtime).
    bool enforce_single_touch = false;
  };

  session() : session(options{}) {}
  explicit session(std::string backend_name)
      : session(options{.backend = std::move(backend_name)}) {}
  explicit session(const char* backend_name)
      : session(options{.backend = backend_name}) {}
  // Throws detect::backend_error when options::backend is not registered.
  explicit session(options opt);
  ~session();
  session(const session&) = delete;
  session& operator=(const session&) = delete;

  // Additional execution listeners (oracles, dag recorders) observing this
  // session's run. Must be called before runtime() / run().
  void add_listener(rt::execution_listener* l);

  // The runtime this session's program executes on. At level::baseline the
  // runtime carries no listener (the paper's zero-work configuration).
  rt::serial_runtime& runtime();

  // Returns whatever a runtime-driver callable returns (void for program
  // bodies), so kernels can hand their answer straight out:
  //   int got = s.run([&](rt::serial_runtime& rt) { return kernel(rt); });
  template <typename F>
  decltype(auto) run(F&& f) {
    rt::serial_runtime& rt = runtime();
    detect::hooks::scoped_sink sink(det_.get());
    if constexpr (std::is_invocable_v<F&, rt::serial_runtime&>) {
      return f(rt);
    } else {
      rt.run(std::forward<F>(f));
    }
  }

  const options& opts() const { return opt_; }
  const detect::backend_info& info() const { return *info_; }
  std::string_view backend_name() const { return info_->name; }
  detect::level lvl() const { return opt_.level; }

  detect::detector& detector() { return *det_; }
  const detect::detector& detector() const { return *det_; }
  detect::reachability_backend& backend() { return det_->backend(); }
  const detect::reachability_backend& backend() const {
    return det_->backend();
  }

  const detect::race_report& report() const { return det_->report(); }
  std::uint64_t access_count() const { return det_->access_count(); }
  std::uint64_t get_count() const { return det_->get_count(); }
  std::uint64_t structured_violations() const {
    return det_->structured_violations();
  }
  bool precedes_current(rt::strand_id u) { return det_->precedes_current(u); }

  // Explicit instrumentation points — exactly what hooks::active emits.
  // Tests and uninstrumented callers mark accesses with these.
  void read(const void* p, std::size_t bytes = 4) { det_->on_read(p, bytes); }
  void write(const void* p, std::size_t bytes = 4) { det_->on_write(p, bytes); }

 private:
  options opt_;
  const detect::backend_info* info_;
  std::unique_ptr<detect::detector> det_;
  std::vector<rt::execution_listener*> extras_;
  // Built on first use so extra listeners can be attached after
  // construction; the mux only exists when extras are present, keeping the
  // common event path a single virtual call (the paper's "reachability"
  // overhead measurement).
  std::unique_ptr<rt::listener_mux> mux_;
  std::unique_ptr<rt::serial_runtime> rt_;
};

}  // namespace frd
