#include "bench_suite/mm.hpp"

#include "support/prng.hpp"

namespace frd::bench {

mm_input make_mm_input(std::size_t n, std::uint64_t seed) {
  mm_input in;
  in.n = n;
  in.a.resize(n * n);
  in.b.resize(n * n);
  prng rng(seed);
  // Small integer-valued floats keep float accumulation exact, so kernels
  // can be compared bit-for-bit against the reference.
  for (auto& x : in.a) x = static_cast<float>(rng.range(-4, 4));
  for (auto& x : in.b) x = static_cast<float>(rng.range(-4, 4));
  return in;
}

std::vector<float> mm_reference(const mm_input& in) {
  const std::size_t n = in.n;
  std::vector<float> c(n * n, 0.0f);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k) {
      const float aik = in.a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) c[i * n + j] += aik * in.b[k * n + j];
    }
  return c;
}

double mm_checksum(const std::vector<float>& c) {
  double s = 0;
  for (float x : c) s += x;
  return s;
}

}  // namespace frd::bench
