// lcs: longest common subsequence, tiled wavefront DP (paper §6).
//
// D[i][j] = LCS length of a[0..i) and b[0..j). Θ(n²) work, Θ((n/B)²)
// futures. Tile dependence and the structured/general future decompositions
// live in wavefront.hpp.
#pragma once

#include <algorithm>

#include "bench_suite/wavefront.hpp"
#include "support/check.hpp"

namespace frd::bench {

struct lcs_input {
  std::string a;
  std::string b;
};

inline lcs_input make_lcs_input(std::size_t n, std::uint64_t seed) {
  return lcs_input{random_string(n, seed), random_string(n, seed * 31 + 7)};
}

// Uninstrumented serial reference (validation).
int lcs_reference(const lcs_input& in);

namespace detail {

// One DP tile, every access through the hook policy.
template <typename H>
void lcs_tile(const lcs_input& in, std::vector<std::int32_t>& d,
              const tile_grid& g, std::size_t ti, std::size_t tj) {
  const std::size_t stride = g.n + 1;
  for (std::size_t i = g.row_begin(ti); i < g.row_end(ti); ++i) {
    for (std::size_t j = g.row_begin(tj); j < g.row_end(tj); ++j) {
      const char ca = detect::hooks::ld<H>(in.a[i - 1]);
      const char cb = detect::hooks::ld<H>(in.b[j - 1]);
      std::int32_t v;
      if (ca == cb) {
        v = detect::hooks::ld<H>(d[(i - 1) * stride + (j - 1)]) + 1;
      } else {
        v = std::max(detect::hooks::ld<H>(d[(i - 1) * stride + j]),
                     detect::hooks::ld<H>(d[i * stride + (j - 1)]));
      }
      detect::hooks::st<H>(d[i * stride + j], v);
    }
  }
}

}  // namespace detail

template <typename H, typename RT>
int lcs_structured(RT& rt, const lcs_input& in, std::size_t base) {
  FRD_CHECK(in.a.size() == in.b.size());
  const tile_grid g(in.a.size(), base);
  std::vector<std::int32_t> d((g.n + 1) * (g.n + 1), 0);
  wavefront_structured(rt, g, [&](std::size_t ti, std::size_t tj) {
    detail::lcs_tile<H>(in, d, g, ti, tj);
  });
  return d[g.n * (g.n + 1) + g.n];
}

template <typename H, typename RT>
int lcs_general(RT& rt, const lcs_input& in, std::size_t base) {
  FRD_CHECK(in.a.size() == in.b.size());
  const tile_grid g(in.a.size(), base);
  std::vector<std::int32_t> d((g.n + 1) * (g.n + 1), 0);
  wavefront_general(rt, g, [&](std::size_t ti, std::size_t tj) {
    detail::lcs_tile<H>(in, d, g, ti, tj);
  });
  return d[g.n * (g.n + 1) + g.n];
}

}  // namespace frd::bench
