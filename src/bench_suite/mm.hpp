// mm: blocked matrix multiplication without temporary matrices (paper §6).
//
// C is partitioned into (n/B)² blocks; block C(i,j) accumulates the K =
// n/B partial products A(i,k)·B(k,j). Without temporaries the k-partials
// for one C block must be *serialized*; with futures that is a chain:
// task (i,j,k) joins the future of (i,j,k-1), different (i,j) chains run
// logically in parallel. This yields the paper's (n/B)³ future count —
// the largest k of the suite, which is what makes mm the clearest k²
// stress for MultiBags+ in Figure 8.
//
// Structured: pure chains, every handle single-touch.
// General: the chain-tail handles are additionally re-joined by a gather
// pass (multi-touch), as a consumer that validates block results would.
#pragma once

#include <cstdint>
#include <vector>

#include "bench_suite/common.hpp"
#include "support/check.hpp"

namespace frd::bench {

struct mm_input {
  std::size_t n = 0;
  std::vector<float> a;  // row-major n*n
  std::vector<float> b;
};

mm_input make_mm_input(std::size_t n, std::uint64_t seed);

// Uninstrumented serial reference; returns the full product.
std::vector<float> mm_reference(const mm_input& in);

// Checksum used to compare kernels cheaply (sum of all C entries).
double mm_checksum(const std::vector<float>& c);

namespace detail {

// C(bi,bj) += A(bi,bk) * B(bk,bj), all through the hooks.
template <typename H>
void mm_block(const mm_input& in, std::vector<float>& c, std::size_t base,
              std::size_t bi, std::size_t bj, std::size_t bk) {
  const std::size_t n = in.n;
  const std::size_t i0 = bi * base, j0 = bj * base, k0 = bk * base;
  for (std::size_t i = i0; i < i0 + base; ++i) {
    for (std::size_t j = j0; j < j0 + base; ++j) {
      float acc = detect::hooks::ld<H>(c[i * n + j]);
      for (std::size_t k = k0; k < k0 + base; ++k) {
        acc += detect::hooks::ld<H>(in.a[i * n + k]) *
               detect::hooks::ld<H>(in.b[k * n + j]);
      }
      detect::hooks::st<H>(c[i * n + j], acc);
    }
  }
}

}  // namespace detail

template <typename H, typename RT>
std::vector<float> mm_structured(RT& rt, const mm_input& in,
                                 std::size_t base) {
  FRD_CHECK(in.n % base == 0);
  const std::size_t t = in.n / base;
  std::vector<float> c(in.n * in.n, 0.0f);

  rt.run([&] {
    // Last link per C block. Handle slots are only ever written by this
    // (main) strand; bodies read the moved-in `prev` handle, so the pattern
    // is parallel-safe as-is.
    std::vector<typename RT::template future_of<int>> chain(t * t);
    for (std::size_t k = 0; k < t; ++k) {
      for (std::size_t i = 0; i < t; ++i) {
        for (std::size_t j = 0; j < t; ++j) {
          auto prev = std::move(chain[i * t + j]);  // empty when k == 0
          chain[i * t + j] =
              rt.create_future([&, i, j, k, prev = std::move(prev)]() mutable {
                if (prev.valid()) prev.get();
                detail::mm_block<H>(in, c, base, i, j, k);
                return 1;
              });
        }
      }
    }
    for (std::size_t i = 0; i < t; ++i)
      for (std::size_t j = 0; j < t; ++j) chain[i * t + j].get();
  });
  return c;
}

template <typename H, typename RT>
std::vector<float> mm_general(RT& rt, const mm_input& in, std::size_t base) {
  FRD_CHECK(in.n % base == 0);
  const std::size_t t = in.n / base;
  std::vector<float> c(in.n * in.n, 0.0f);

  rt.run([&] {
    std::vector<typename RT::template future_of<int>> chain(t * t);
    for (std::size_t k = 0; k < t; ++k) {
      for (std::size_t i = 0; i < t; ++i) {
        for (std::size_t j = 0; j < t; ++j) {
          auto prev = std::move(chain[i * t + j]);
          chain[i * t + j] =
              rt.create_future([&, i, j, k, prev = std::move(prev)]() mutable {
                if (prev.valid()) prev.get();
                detail::mm_block<H>(in, c, base, i, j, k);
                return 1;
              });
        }
      }
    }
    // Gather pass: one future per block row re-joins every tail handle in
    // the row (first touch), then main re-joins them all (second touch) —
    // multi-touch handles, hence a general-futures program.
    std::vector<typename RT::template future_of<int>> gather(t);
    for (std::size_t i = 0; i < t; ++i) {
      gather[i] = rt.create_future([&, i]() -> int {
        for (std::size_t j = 0; j < t; ++j) chain[i * t + j].get();
        return 1;
      });
    }
    for (std::size_t i = 0; i < t; ++i) {
      gather[i].get();
      for (std::size_t j = 0; j < t; ++j) chain[i * t + j].get();
    }
  });
  return c;
}

}  // namespace frd::bench
