#include "bench_suite/bst.hpp"

#include <limits>

namespace frd::bench {

namespace {

// Balanced tree over keys {offset, offset+step, ...} via midpoint recursion.
bst_node* build_balanced(arena& a, std::int64_t offset, std::int64_t step,
                         std::size_t count) {
  if (count == 0) return nullptr;
  const std::size_t mid = count / 2;
  auto* n = a.create<bst_node>(
      bst_node{offset + step * static_cast<std::int64_t>(mid), nullptr, nullptr});
  n->left = build_balanced(a, offset, step, mid);
  n->right = build_balanced(a, offset + step * static_cast<std::int64_t>(mid + 1),
                            step, count - mid - 1);
  return n;
}

}  // namespace

bst_input make_bst_input(std::size_t n1, std::size_t n2, std::uint64_t seed) {
  bst_input in;
  in.nodes = std::make_unique<arena>(1 << 20);
  in.n1 = n1;
  in.n2 = n2;
  // Even keys vs odd keys: fully interleaved merges. The seed perturbs the
  // starting offsets so different runs exercise different shapes.
  const auto jitter = static_cast<std::int64_t>(seed % 1000) * 2;
  in.t1 = build_balanced(*in.nodes, jitter, 2, n1);
  in.t2 = build_balanced(*in.nodes, jitter + 1, 2, n2);
  return in;
}

std::size_t bst_count(const bst_node* t) {
  if (t == nullptr) return 0;
  return 1 + bst_count(t->left) + bst_count(t->right);
}

namespace {
bool check_range(const bst_node* t, std::int64_t lo, std::int64_t hi) {
  if (t == nullptr) return true;
  if (t->key <= lo || t->key >= hi) return false;
  return check_range(t->left, lo, t->key) && check_range(t->right, t->key, hi);
}
}  // namespace

bool bst_is_search_tree(const bst_node* t) {
  return check_range(t, std::numeric_limits<std::int64_t>::min(),
                     std::numeric_limits<std::int64_t>::max());
}

std::int64_t bst_key_sum(const bst_node* t) {
  if (t == nullptr) return 0;
  return t->key + bst_key_sum(t->left) + bst_key_sum(t->right);
}

}  // namespace frd::bench
