// sw: Smith-Waterman local alignment with general gap penalties (paper §6).
//
// H(i,j) = max(0, H(i-1,j-1) + s(a_i,b_j),
//              max_k H(i-k,j) - gap(k), max_l H(i,j-l) - gap(l))
// The full row/column scans make the work Θ(n³) while the tiling still
// yields only (n/B)² futures — which is why the paper reports that sw
// barely feels MultiBags+'s k² term (Figure 8) where lcs (Θ(n²) work, same
// future count) does.
#pragma once

#include <algorithm>

#include "bench_suite/wavefront.hpp"
#include "support/check.hpp"

namespace frd::bench {

struct sw_input {
  std::string a;
  std::string b;
};

inline sw_input make_sw_input(std::size_t n, std::uint64_t seed) {
  return sw_input{random_string(n, seed + 3), random_string(n, seed * 17 + 11)};
}

// Scoring: +2 match, -1 mismatch, affine-free linear gap cost 1 + k/4 so
// long gaps stay in play (keeps the column/row scans meaningful).
namespace detail {

inline std::int32_t sw_sub_score(char x, char y) { return x == y ? 2 : -1; }
inline std::int32_t sw_gap_cost(std::size_t k) {
  return static_cast<std::int32_t>(1 + k / 4);
}

template <typename H>
void sw_tile(const sw_input& in, std::vector<std::int32_t>& h,
             const tile_grid& g, std::size_t ti, std::size_t tj) {
  const std::size_t stride = g.n + 1;
  for (std::size_t i = g.row_begin(ti); i < g.row_end(ti); ++i) {
    for (std::size_t j = g.row_begin(tj); j < g.row_end(tj); ++j) {
      const char ca = detect::hooks::ld<H>(in.a[i - 1]);
      const char cb = detect::hooks::ld<H>(in.b[j - 1]);
      std::int32_t best = 0;
      best = std::max(best, detect::hooks::ld<H>(h[(i - 1) * stride + (j - 1)]) +
                                sw_sub_score(ca, cb));
      for (std::size_t k = 1; k <= i; ++k)
        best = std::max(best, detect::hooks::ld<H>(h[(i - k) * stride + j]) -
                                  sw_gap_cost(k));
      for (std::size_t l = 1; l <= j; ++l)
        best = std::max(best, detect::hooks::ld<H>(h[i * stride + (j - l)]) -
                                  sw_gap_cost(l));
      detect::hooks::st<H>(h[i * stride + j], best);
    }
  }
}

}  // namespace detail

// Maximum alignment score (the SW objective).
std::int32_t sw_reference(const sw_input& in);

template <typename H, typename RT>
std::int32_t sw_structured(RT& rt, const sw_input& in, std::size_t base) {
  FRD_CHECK(in.a.size() == in.b.size());
  const tile_grid g(in.a.size(), base);
  std::vector<std::int32_t> h((g.n + 1) * (g.n + 1), 0);
  wavefront_structured(rt, g, [&](std::size_t ti, std::size_t tj) {
    detail::sw_tile<H>(in, h, g, ti, tj);
  });
  return *std::max_element(h.begin(), h.end());
}

template <typename H, typename RT>
std::int32_t sw_general(RT& rt, const sw_input& in, std::size_t base) {
  FRD_CHECK(in.a.size() == in.b.size());
  const tile_grid g(in.a.size(), base);
  std::vector<std::int32_t> h((g.n + 1) * (g.n + 1), 0);
  wavefront_general(rt, g, [&](std::size_t ti, std::size_t tj) {
    detail::sw_tile<H>(in, h, g, ti, tj);
  });
  return *std::max_element(h.begin(), h.end());
}

}  // namespace frd::bench
