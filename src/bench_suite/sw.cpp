#include "bench_suite/sw.hpp"

namespace frd::bench {

std::int32_t sw_reference(const sw_input& in) {
  const std::size_t n = in.a.size(), m = in.b.size();
  std::vector<std::int32_t> h((n + 1) * (m + 1), 0);
  const std::size_t stride = m + 1;
  std::int32_t best_overall = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      std::int32_t best = 0;
      best = std::max(best, h[(i - 1) * stride + (j - 1)] +
                                detail::sw_sub_score(in.a[i - 1], in.b[j - 1]));
      for (std::size_t k = 1; k <= i; ++k)
        best = std::max(best, h[(i - k) * stride + j] - detail::sw_gap_cost(k));
      for (std::size_t l = 1; l <= j; ++l)
        best = std::max(best, h[i * stride + (j - l)] - detail::sw_gap_cost(l));
      h[i * stride + j] = best;
      best_overall = std::max(best_overall, best);
    }
  }
  return best_overall;
}

}  // namespace frd::bench
