// dedup: deduplicating compression pipeline (paper §6; PARSEC [7,8]).
//
// Two stages expressed with futures (the PARSEC five-stage pipeline with
// refine/dedupe/compress collapsed onto the ordered stage):
//   stage A (parallel): per fragment — content-defined chunking + SHA-1;
//   stage B (ordered):  per fragment, chained through a future — dedup
//                       hash-table pass, compression of unique chunks, and
//                       in-order output accumulation.
// The chain makes the shared dedup table and output stream race-free; the
// escape-a-sync shape (stage A futures outliving any sync scope) is what
// fork-join cannot express. dedup uses futures in a structured, single-touch
// way — the paper notes it "does not utilize the flexibility of general
// futures", so both Figure 6 and Figure 7 run this same program.
//
// The compressor hook policy is separate (`CH`): the paper could not
// instrument its compression library (making dedup the overhead outlier);
// CH = hooks::none reproduces that, CH = hooks::active is the ablation the
// authors could not run.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bench_suite/common.hpp"
#include "compress/chunker.hpp"
#include "compress/digest.hpp"
#include "compress/lz.hpp"
#include "support/check.hpp"

namespace frd::bench {

struct dedup_input {
  std::vector<std::uint8_t> corpus;
};

// Synthetic corpus: blocks of fresh random bytes interleaved with repeats of
// earlier motifs; `redundancy_pct` controls the dedup hit rate.
dedup_input make_dedup_corpus(std::size_t bytes, int redundancy_pct,
                              std::uint64_t seed);

struct dedup_result {
  std::size_t fragments = 0;
  std::size_t total_chunks = 0;
  std::size_t unique_chunks = 0;
  std::size_t compressed_bytes = 0;
  std::uint64_t output_digest = 0;  // order-sensitive fold over the output

  bool operator==(const dedup_result&) const = default;
};

// Uninstrumented serial reference.
dedup_result dedup_reference(const dedup_input& in, std::size_t fragment_size);

namespace detail {

// Announces the access stream of a byte scan (chunker / SHA-1 pass) to the
// detector. The substrate routines themselves are not hook-templated; this
// emits the same one-read-per-byte stream they perform (DESIGN.md
// substitution note).
template <typename H>
void scan_bytes(std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t& b : bytes) detect::hooks::ld<H>(b);
}

struct frag_chunks {
  std::size_t frag_offset = 0;
  std::vector<compress::chunk_ref> chunks;  // offsets relative to corpus
  std::vector<std::uint64_t> keys;          // sha1-derived 64-bit keys
};

// Fixed-capacity open-addressing dedup table with instrumented probes —
// the shared state whose accesses the ordered stage must serialize.
class dedup_table {
 public:
  explicit dedup_table(std::size_t expected)
      : mask_(capacity_for(expected) - 1), slots_(mask_ + 1, kEmpty) {}

  // Returns true if `key` was newly inserted (unique chunk).
  template <typename H>
  bool insert(std::uint64_t key) {
    FRD_CHECK_MSG(size_ * 10 < slots_.size() * 7, "dedup table overfull");
    std::size_t i = key & mask_;
    for (;;) {
      const std::uint64_t cur = detect::hooks::ld<H>(slots_[i]);
      if (cur == key) return false;
      if (cur == kEmpty) {
        detect::hooks::st<H>(slots_[i], key);
        ++size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  std::size_t size() const { return size_; }

 private:
  static constexpr std::uint64_t kEmpty = 0;
  static std::size_t capacity_for(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    return cap;
  }
  std::size_t mask_;
  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

}  // namespace detail

// H instruments the pipeline proper; CH instruments the compressor. RT is
// any runtime exposing the shared surface (serial, parallel, online): every
// handle slot is written by main before the future that reads it is created
// (stage A completes before stage B starts; pipe[f-1] before pipe[f]), so
// creation edges order all handle accesses under a parallel runtime, and the
// shared table/cells are serialized by the stage-B future-done chain.
template <typename H, typename CH, typename RT>
dedup_result dedup_pipeline(RT& rt, const dedup_input& in,
                            std::size_t fragment_size) {
  const std::size_t n_frags =
      (in.corpus.size() + fragment_size - 1) / fragment_size;
  dedup_result res;
  res.fragments = n_frags;

  rt.run([&] {
    // Stage A: chunk + fingerprint each fragment, all logically parallel.
    std::vector<typename RT::template future_of<detail::frag_chunks>> stage_a(
        n_frags);
    for (std::size_t f = 0; f < n_frags; ++f) {
      stage_a[f] = rt.create_future([&, f]() {
        const std::size_t off = f * fragment_size;
        const std::size_t len =
            std::min(fragment_size, in.corpus.size() - off);
        const std::span<const std::uint8_t> frag(in.corpus.data() + off, len);
        detail::scan_bytes<H>(frag);  // the chunker's read stream
        detail::frag_chunks out;
        out.frag_offset = off;
        out.chunks = compress::chunk_bytes(frag);
        out.keys.reserve(out.chunks.size());
        for (auto& c : out.chunks) {
          c.offset += off;  // rebase to the corpus
          const std::span<const std::uint8_t> chunk(in.corpus.data() + c.offset,
                                                    c.size);
          detail::scan_bytes<H>(chunk);  // SHA-1's read stream
          out.keys.push_back(compress::sha1_key64(compress::sha1(chunk)));
        }
        return out;
      });
    }

    // Stage B: ordered dedup + compress, chained through single-touch
    // futures; the chain is the pipeline's serialization spine.
    detail::dedup_table table(in.corpus.size() / 1024 + 64);
    std::uint64_t digest_cell = 1469598103934665603ULL ^ 0xdeadbeef;
    std::size_t compressed_cell = 0;
    std::size_t total_cell = 0, unique_cell = 0;

    std::vector<typename RT::template future_of<int>> pipe(n_frags);
    for (std::size_t f = 0; f < n_frags; ++f) {
      pipe[f] = rt.create_future([&, f]() -> int {
        if (f > 0) pipe[f - 1].get();          // single touch of f-1
        const detail::frag_chunks& fc = stage_a[f].get();  // single touch
        for (std::size_t ci = 0; ci < fc.chunks.size(); ++ci) {
          detect::hooks::st<H>(total_cell, total_cell + 1);
          const std::uint64_t key = fc.keys[ci];
          const bool fresh = table.insert<H>(key);
          std::uint64_t fold = key * 2 + (fresh ? 1 : 0);
          if (fresh) {
            detect::hooks::st<H>(unique_cell, unique_cell + 1);
            const auto& c = fc.chunks[ci];
            auto packed = compress::lz_compress<CH>(
                std::span<const std::uint8_t>(in.corpus.data() + c.offset,
                                              c.size));
            detect::hooks::st<H>(compressed_cell,
                                 compressed_cell + packed.size());
            fold ^= compress::fnv1a64(packed);
          }
          const std::uint64_t d = detect::hooks::ld<H>(digest_cell);
          detect::hooks::st<H>(digest_cell, (d ^ fold) * 1099511628211ULL);
        }
        return 1;
      });
    }
    if (n_frags > 0) pipe[n_frags - 1].get();

    res.total_chunks = total_cell;
    res.unique_chunks = unique_cell;
    res.compressed_bytes = compressed_cell;
    res.output_digest = digest_cell;
  });
  return res;
}

}  // namespace frd::bench
