#include "bench_suite/lcs.hpp"

namespace frd::bench {

int lcs_reference(const lcs_input& in) {
  const std::size_t n = in.a.size(), m = in.b.size();
  std::vector<std::int32_t> d((n + 1) * (m + 1), 0);
  const std::size_t stride = m + 1;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      if (in.a[i - 1] == in.b[j - 1]) {
        d[i * stride + j] = d[(i - 1) * stride + (j - 1)] + 1;
      } else {
        d[i * stride + j] =
            std::max(d[(i - 1) * stride + j], d[i * stride + (j - 1)]);
      }
    }
  }
  return d[n * stride + m];
}

}  // namespace frd::bench
