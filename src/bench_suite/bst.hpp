// bst: binary search tree merge in the style of Blelloch & Reid-Miller's
// "Pipelining with futures" (paper §6, [10]).
//
// merge(a, b): split b around a's root key, then merge the two child pairs.
// The child merges become futures; the parent *defers* joining them —
// handles are queued and resolved later, so subtree merges overlap like the
// BRM pipeline. Below `depth_cutoff` the merge runs serially (base-case
// coarsening, same role as B in the DP kernels): the future count is
// Θ(2^depth_cutoff).
//
// Structured: the resolver walks the fix-up queue top-down (reverse record
//   order), so each handle's creator has already been joined before the
//   handle is touched — single-touch + discipline hold.
// General: the resolver walks bottom-up (record order): handles are touched
//   while their creators are still logically parallel to main, which is
//   exactly the unstructured-get pattern only MultiBags+ supports.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "bench_suite/common.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"

namespace frd::bench {

struct bst_node {
  std::int64_t key;
  bst_node* left;
  bst_node* right;
};

struct bst_input {
  std::unique_ptr<arena> nodes;  // owns every node of both trees
  bst_node* t1 = nullptr;
  bst_node* t2 = nullptr;
  std::size_t n1 = 0;
  std::size_t n2 = 0;
};

// t1 holds n1 even keys, t2 holds n2 odd keys (disjoint, interleaving), both
// built balanced.
bst_input make_bst_input(std::size_t n1, std::size_t n2, std::uint64_t seed);

// Validation helpers.
std::size_t bst_count(const bst_node* t);
bool bst_is_search_tree(const bst_node* t);
std::int64_t bst_key_sum(const bst_node* t);

namespace detail {

template <typename H>
using ld_t = void;  // placeholder to keep the hook include obvious

// Destructive split of t around `key` (no equal keys by construction):
// returns {keys < key, keys > key}.
template <typename H>
std::pair<bst_node*, bst_node*> bst_split(bst_node* t, std::int64_t key) {
  if (t == nullptr) return {nullptr, nullptr};
  if (detect::hooks::ld<H>(t->key) < key) {
    auto [lo, hi] = bst_split<H>(detect::hooks::ld<H>(t->right), key);
    detect::hooks::st<H>(t->right, lo);
    return {t, hi};
  }
  auto [lo, hi] = bst_split<H>(detect::hooks::ld<H>(t->left), key);
  detect::hooks::st<H>(t->left, hi);
  return {lo, t};
}

// Serial merge (base case and reference).
template <typename H>
bst_node* bst_merge_serial(bst_node* a, bst_node* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  auto [lo, hi] = bst_split<H>(b, detect::hooks::ld<H>(a->key));
  detect::hooks::st<H>(a->left,
                       bst_merge_serial<H>(detect::hooks::ld<H>(a->left), lo));
  detect::hooks::st<H>(a->right,
                       bst_merge_serial<H>(detect::hooks::ld<H>(a->right), hi));
  return a;
}

}  // namespace detail

// Shared future-merge machinery; `structured` selects the resolver order.
// Each fix-up owns its two child handles outright (an index into a shared
// handle container would only be meaningful under eager serial execution,
// where create returns after the body ran); the fix-up list is the one
// piece of state bodies mutate concurrently under a parallel runtime, so a
// mutex guards the push and `rt.quiesce()` fences the resolve pass behind
// every outstanding body. Under the serial runtime the lock is uncontended
// and the create/get sequence — hence the event stream — is unchanged.
// Under a parallel runtime the fix-up order (and so the report) is
// run-dependent; the online↔replay oracle holds per run regardless.
template <typename H, typename RT>
bst_node* bst_merge_futures(RT& rt, bst_node* t1, bst_node* t2,
                            int depth_cutoff, bool structured) {
  using future_t = typename RT::template future_of<bst_node*>;
  struct fixup {
    bst_node* parent;
    future_t left;
    future_t right;
  };
  bst_node* result = nullptr;

  rt.run([&] {
    std::mutex mu;
    std::vector<fixup> fixups;

    // Recursive merge; fix-ups are recorded after the creates return, so
    // under serial eager execution the order is DFS post-order: children
    // before their parent.
    std::function<bst_node*(bst_node*, bst_node*, int)> merge =
        [&](bst_node* a, bst_node* b, int depth) -> bst_node* {
      if (a == nullptr) return b;
      if (b == nullptr) return a;
      if (depth >= depth_cutoff) return detail::bst_merge_serial<H>(a, b);
      auto [lo, hi] = detail::bst_split<H>(b, detect::hooks::ld<H>(a->key));
      bst_node* al = detect::hooks::ld<H>(a->left);
      bst_node* ar = detect::hooks::ld<H>(a->right);
      future_t fl = rt.create_future(
          [&, al, lo, depth] { return merge(al, lo, depth + 1); });
      future_t fr = rt.create_future(
          [&, ar, hi, depth] { return merge(ar, hi, depth + 1); });
      {
        std::lock_guard<std::mutex> g(mu);
        fixups.push_back(fixup{a, std::move(fl), std::move(fr)});
      }
      return a;
    };

    result = merge(t1, t2, 0);
    // All bodies (and so all fix-up pushes) are complete past this point;
    // no-op under serial where create was eager anyway.
    rt.quiesce();

    auto resolve = [&](fixup& f) {
      detect::hooks::st<H>(f.parent->left, f.left.get());
      detect::hooks::st<H>(f.parent->right, f.right.get());
    };
    if (structured) {
      // Top-down: a fix-up's handles were created by a body that an earlier
      // (parent) fix-up already joined.
      for (auto it = fixups.rbegin(); it != fixups.rend(); ++it) resolve(*it);
    } else {
      // Bottom-up: joins handles whose creators are still parallel to main.
      for (fixup& f : fixups) resolve(f);
    }
  });
  return result;
}

template <typename H, typename RT>
bst_node* bst_structured(RT& rt, bst_input& in, int depth_cutoff) {
  return bst_merge_futures<H>(rt, in.t1, in.t2, depth_cutoff, true);
}

template <typename H, typename RT>
bst_node* bst_general(RT& rt, bst_input& in, int depth_cutoff) {
  return bst_merge_futures<H>(rt, in.t1, in.t2, depth_cutoff, false);
}

}  // namespace frd::bench
