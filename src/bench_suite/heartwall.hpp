// heartwall: ultrasound wall tracking (paper §6; Rodinia [15] adapted).
//
// Sample points on the heart wall are tracked from frame to frame by
// template matching (image/tracking.hpp). The cross-frame dependence is a
// per-point pipeline: the tracker for (t, p) needs point p's position from
// frame t-1 — a future per (frame, point):
//
// Structured: task (t,p) joins F[t-1][p] only — each handle single-touch.
// General:    task (t,p) joins F[t-1][p-1], F[t-1][p], F[t-1][p+1] and
//             smooths over the neighbour positions (the wall is a contour,
//             neighbours constrain each other) — handles are touched up to
//             three times, which fork-join or single-touch futures cannot
//             express (the paper's motivation for heartwall).
#pragma once

#include <vector>

#include "bench_suite/common.hpp"
#include "image/phantom.hpp"
#include "image/tracking.hpp"
#include "support/check.hpp"

namespace frd::bench {

struct heartwall_input {
  image::phantom_sequence seq;
  std::vector<image::frame> frames;  // pre-rendered (I/O stand-in)
  std::vector<image::point> points0;
  int n_frames;
  int tmpl_rad = 3;
  int search_rad = 4;
};

heartwall_input make_heartwall_input(int width, int height, int n_points,
                                     int n_frames, std::uint64_t seed);

// Uninstrumented serial reference: final positions of all points.
std::vector<image::point> heartwall_reference(const heartwall_input& in);

// Both kernels hold the full (frame, point) future table rather than a
// prev/cur ping-pong: a swap on the main strand would race with frame-t
// bodies still reading prev under a parallel runtime, whereas table slot
// (t-1, p) is written by main before any frame-t future exists, so creation
// edges order every handle access. The serial event stream is identical
// either way (same create/get sequence).
template <typename H, typename RT>
std::vector<image::point> heartwall_structured(RT& rt,
                                               const heartwall_input& in) {
  const std::size_t np = in.points0.size();
  std::vector<image::point> final_pos(np);
  rt.run([&] {
    std::vector<typename RT::template future_of<image::point>> f(
        static_cast<std::size_t>(in.n_frames) * np);
    for (std::size_t p = 0; p < np; ++p) {
      const image::point start = in.points0[p];
      f[p] = rt.create_future([start] { return start; });
    }
    for (int t = 1; t < in.n_frames; ++t) {
      for (std::size_t p = 0; p < np; ++p) {
        f[static_cast<std::size_t>(t) * np + p] = rt.create_future([&, t,
                                                                    p]() {
          const image::point from =
              f[static_cast<std::size_t>(t - 1) * np + p].get();  // 1 touch
          return image::track_point<H>(in.frames[t - 1], in.frames[t], from,
                                       in.tmpl_rad, in.search_rad);
        });
      }
    }
    const std::size_t last = static_cast<std::size_t>(in.n_frames - 1) * np;
    for (std::size_t p = 0; p < np; ++p) final_pos[p] = f[last + p].get();
  });
  return final_pos;
}

template <typename H, typename RT>
std::vector<image::point> heartwall_general(RT& rt,
                                            const heartwall_input& in) {
  const std::size_t np = in.points0.size();
  FRD_CHECK_MSG(np >= 3, "neighbour smoothing needs at least 3 points");
  std::vector<image::point> final_pos(np);
  rt.run([&] {
    std::vector<typename RT::template future_of<image::point>> f(
        static_cast<std::size_t>(in.n_frames) * np);
    for (std::size_t p = 0; p < np; ++p) {
      const image::point start = in.points0[p];
      f[p] = rt.create_future([start] { return start; });
    }
    for (int t = 1; t < in.n_frames; ++t) {
      for (std::size_t p = 0; p < np; ++p) {
        f[static_cast<std::size_t>(t) * np + p] = rt.create_future([&, t,
                                                                    p]() {
          // Multi-touch: each frame-(t-1) handle is joined by 3 trackers.
          const std::size_t row = static_cast<std::size_t>(t - 1) * np;
          const image::point left = f[row + (p + np - 1) % np].get();
          const image::point mine = f[row + p].get();
          const image::point right = f[row + (p + 1) % np].get();
          // Gentle tangential correction of the *search* start only; the
          // template stays anchored at the point's own previous position so
          // a chord-midpoint bias cannot compound across frames.
          image::point from{mine.x + (left.x + right.x - 2 * mine.x) / 8,
                            mine.y + (left.y + right.y - 2 * mine.y) / 8};
          return image::track_point<H>(in.frames[t - 1], in.frames[t], mine,
                                       from, in.tmpl_rad, in.search_rad);
        });
      }
    }
    const std::size_t last = static_cast<std::size_t>(in.n_frames - 1) * np;
    for (std::size_t p = 0; p < np; ++p) final_pos[p] = f[last + p].get();
  });
  return final_pos;
}

}  // namespace frd::bench
