#include "bench_suite/dedup.hpp"

#include "support/prng.hpp"

namespace frd::bench {

dedup_input make_dedup_corpus(std::size_t bytes, int redundancy_pct,
                              std::uint64_t seed) {
  FRD_CHECK(redundancy_pct >= 0 && redundancy_pct <= 100);
  dedup_input in;
  in.corpus.reserve(bytes);
  prng rng(seed);

  // Motif pool: long blocks that recur throughout the corpus. Motifs span
  // many content-defined chunks (32-64 KiB vs the ~4 KiB chunk target), so
  // their interior chunks re-synchronize and dedup — only the junction
  // chunks at motif boundaries stay unique, like repeated regions in real
  // archival data.
  std::vector<std::vector<std::uint8_t>> motifs;
  for (int m = 0; m < 4; ++m) {
    std::vector<std::uint8_t> block((16u << 10) + rng.below(16u << 10));
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
    motifs.push_back(std::move(block));
  }

  while (in.corpus.size() < bytes) {
    if (rng.chance(static_cast<std::uint64_t>(redundancy_pct), 100)) {
      const auto& m = motifs[rng.below(motifs.size())];
      in.corpus.insert(in.corpus.end(), m.begin(), m.end());
    } else {
      std::size_t n = 4096 + rng.below(8192);
      for (std::size_t i = 0; i < n; ++i)
        in.corpus.push_back(static_cast<std::uint8_t>(rng.next()));
    }
  }
  in.corpus.resize(bytes);
  return in;
}

dedup_result dedup_reference(const dedup_input& in, std::size_t fragment_size) {
  const std::size_t n_frags =
      (in.corpus.size() + fragment_size - 1) / fragment_size;
  dedup_result res;
  res.fragments = n_frags;

  detail::dedup_table table(in.corpus.size() / 1024 + 64);
  std::uint64_t digest = 1469598103934665603ULL ^ 0xdeadbeef;

  for (std::size_t f = 0; f < n_frags; ++f) {
    const std::size_t off = f * fragment_size;
    const std::size_t len = std::min(fragment_size, in.corpus.size() - off);
    const std::span<const std::uint8_t> frag(in.corpus.data() + off, len);
    auto chunks = compress::chunk_bytes(frag);
    for (auto& c : chunks) {
      c.offset += off;
      const std::span<const std::uint8_t> chunk(in.corpus.data() + c.offset,
                                                c.size);
      const std::uint64_t key = compress::sha1_key64(compress::sha1(chunk));
      ++res.total_chunks;
      const bool fresh = table.insert<detect::hooks::none>(key);
      std::uint64_t fold = key * 2 + (fresh ? 1 : 0);
      if (fresh) {
        ++res.unique_chunks;
        auto packed = compress::lz_compress<detect::hooks::none>(chunk);
        res.compressed_bytes += packed.size();
        fold ^= compress::fnv1a64(packed);
      }
      digest = (digest ^ fold) * 1099511628211ULL;
    }
  }
  res.output_digest = digest;
  return res;
}

}  // namespace frd::bench
