// Tiled-wavefront future scaffolding shared by lcs and sw.
//
// A tile (ti,tj) may run once the tile above and the tile to the left are
// done. Two decompositions, matching the paper's two benchmark flavours:
//
// Structured (single-touch; §2 discipline):
//   * the DOWN dependence is a *create* edge: tile (ti,tj)'s body creates
//     the future for (ti+1,tj) after finishing its own block, so
//     compute(ti,tj) ≺ body(ti+1,tj) without any get;
//   * the RIGHT dependence is a get: body(ti,tj) joins the future of
//     (ti,tj-1), which is touched by no one else;
//   * main seeds row 0 and finally joins the last column top-to-bottom.
//   Every handle is touched exactly once, and every handle slot is written
//   before any ordered reader looks at it (no race on handles):
//   T[i][j]'s slot is written by body(i-1,j), which precedes body(i,j+1)
//   through the left-get chain of row i-1 plus the create edge.
//
// General (multi-touch; MultiBags+ only):
//   one future per tile; its handle is joined by BOTH the tile below and
//   the tile to the right.
//
// Both shapes have k = Θ((n/B)²) get_fut calls — the quantity Figure 8
// sweeps via the base-case size B.
#pragma once

#include <functional>
#include <vector>

#include "bench_suite/common.hpp"
#include "runtime/serial.hpp"

namespace frd::bench {

// tile(ti, tj) computes one block; called exactly once per tile. RT is any
// runtime exposing the shared surface (serial, parallel, online): handle
// slots are written before every ordered reader looks at them, and under a
// parallel runtime each write is separated from its readers by a create
// edge or a future-done edge, so the pattern is data-race-free there too.
template <typename RT, typename TileFn>
void wavefront_structured(RT& rt, const tile_grid& g, TileFn tile) {
  rt.run([&] {
    std::vector<typename RT::template future_of<int>> fut(g.tiles * g.tiles);

    // make_tile(ti,tj) is invoked by whatever strand must precede the tile:
    // main for row 0, the body of (ti-1,tj) otherwise.
    std::function<void(std::size_t, std::size_t)> make_tile =
        [&](std::size_t ti, std::size_t tj) {
          fut[g.index(ti, tj)] = rt.create_future([&, ti, tj]() -> int {
            if (tj > 0) fut[g.index(ti, tj - 1)].get();
            tile(ti, tj);
            if (ti + 1 < g.tiles) make_tile(ti + 1, tj);
            return 1;
          });
        };

    for (std::size_t tj = 0; tj < g.tiles; ++tj) make_tile(0, tj);
    // Join the last column top-to-bottom; each get's creator is ordered
    // before main by the previous get, keeping the discipline intact.
    for (std::size_t ti = 0; ti < g.tiles; ++ti)
      fut[g.index(ti, g.tiles - 1)].get();
  });
}

template <typename RT, typename TileFn>
void wavefront_general(RT& rt, const tile_grid& g, TileFn tile) {
  rt.run([&] {
    std::vector<typename RT::template future_of<int>> fut(g.tiles * g.tiles);
    for (std::size_t ti = 0; ti < g.tiles; ++ti) {
      for (std::size_t tj = 0; tj < g.tiles; ++tj) {
        fut[g.index(ti, tj)] = rt.create_future([&, ti, tj]() -> int {
          if (ti > 0) fut[g.index(ti - 1, tj)].get();  // touch 1 of above
          if (tj > 0) fut[g.index(ti, tj - 1)].get();  // touch 2 of left
          tile(ti, tj);
          return 1;
        });
      }
    }
    fut[g.index(g.tiles - 1, g.tiles - 1)].get();
  });
}

}  // namespace frd::bench
