#include "bench_suite/heartwall.hpp"

namespace frd::bench {

heartwall_input make_heartwall_input(int width, int height, int n_points,
                                     int n_frames, std::uint64_t seed) {
  heartwall_input in{image::phantom_sequence(width, height, n_points, seed),
                     {},
                     {},
                     n_frames};
  in.frames.reserve(static_cast<std::size_t>(n_frames));
  for (int t = 0; t < n_frames; ++t) in.frames.push_back(in.seq.make_frame(t));
  in.points0 = in.seq.initial_points();
  return in;
}

std::vector<image::point> heartwall_reference(const heartwall_input& in) {
  std::vector<image::point> pts = in.points0;
  for (int t = 1; t < in.n_frames; ++t) {
    for (auto& p : pts) {
      p = image::track_point<detect::hooks::none>(in.frames[t - 1], in.frames[t],
                                                  p, in.tmpl_rad, in.search_rad);
    }
  }
  return pts;
}

}  // namespace frd::bench
