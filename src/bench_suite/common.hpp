// Shared helpers for the six paper benchmarks (§6).
//
// All kernels are templated on the instrumentation hook policy H
// (detect::hooks::none or detect::hooks::active) and on the runtime RT —
// any type exposing the shared runtime surface (run / create_future /
// future_of / quiesce): rt::serial_runtime for the paper's sequential
// detection runs, rt::parallel_runtime for bare work-stealing execution,
// and online::runtime for live detection on the parallel scheduler. Under
// the serial runtime every kernel emits the exact event stream it always
// did; the parallel-safety notes at each kernel explain why the handle
// access patterns are data-race-free under the other two.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detect/detector.hpp"
#include "runtime/serial.hpp"
#include "support/prng.hpp"

namespace frd::bench {

// Random byte string over a small alphabet (LCS/SW inputs; a small alphabet
// gives realistic match density).
inline std::string random_string(std::size_t n, std::uint64_t seed,
                                 int alphabet = 4) {
  prng rng(seed);
  std::string s(n, 'A');
  for (auto& c : s)
    c = static_cast<char>('A' + static_cast<int>(rng.below(alphabet)));
  return s;
}

// Tile-grid index helper for the wavefront benchmarks.
struct tile_grid {
  std::size_t n;      // problem size (cells per side)
  std::size_t base;   // tile side length
  std::size_t tiles;  // tiles per side

  tile_grid(std::size_t n_, std::size_t base_)
      : n(n_), base(base_), tiles((n_ + base_ - 1) / base_) {}

  std::size_t index(std::size_t ti, std::size_t tj) const {
    return ti * tiles + tj;
  }
  std::size_t row_begin(std::size_t ti) const { return ti * base + 1; }
  std::size_t row_end(std::size_t ti) const {
    return std::min(n, (ti + 1) * base) + 1;
  }
};

}  // namespace frd::bench
