// The exact reachability oracle packaged as a registry backend ("reference").
//
// Quadratic space and per-construct work — never a production choice, but as
// a backend it turns the full detection pipeline (access history, reader
// purging, race reporting) into an executable specification: a session on
// "reference" must agree with every bag-based session on the racy-granule
// set (the paper's per-location guarantee, §3), which makes it the anchor of
// the differential property-fuzz suite.
#pragma once

#include "detect/backend.hpp"
#include "graph/oracle.hpp"

namespace frd::graph {

class oracle_backend final : public detect::reachability_backend {
 public:
  oracle_backend() = default;

  bool precedes_current(rt::strand_id u) override {
    return oracle_.precedes(u, current_);
  }
  std::string_view name() const override { return "reference"; }

  const online_oracle& oracle() const { return oracle_; }

  // execution_listener: forward dag growth to the oracle, track the strand
  // the runtime is currently executing (the query's right-hand side).
  void on_program_begin(rt::func_id f, rt::strand_id s) override {
    current_ = s;
    oracle_.on_program_begin(f, s);
  }
  void on_strand_begin(rt::strand_id s, rt::func_id) override { current_ = s; }
  void on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                rt::strand_id v) override {
    oracle_.on_spawn(p, u, c, w, v);
  }
  void on_create(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                 rt::strand_id v) override {
    oracle_.on_create(p, u, c, w, v);
  }
  void on_sync(const sync_event& e) override { oracle_.on_sync(e); }
  void on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v, rt::func_id fut,
              rt::strand_id w, rt::strand_id creator) override {
    oracle_.on_get(fn, u, v, fut, w, creator);
  }

 private:
  online_oracle oracle_;
  rt::strand_id current_ = rt::kNoStrand;
};

}  // namespace frd::graph
