// The exact reachability oracle packaged as a registry backend ("reference").
//
// Quadratic space and per-construct work — never a production choice, but as
// a backend it turns the full detection pipeline (access history, reader
// purging, race reporting) into an executable specification: a session on
// "reference" must agree with every bag-based session on the racy-granule
// set (the paper's per-location guarantee, §3), which makes it the anchor of
// the differential property-fuzz suite.
#pragma once

#include "detect/backend.hpp"
#include "graph/oracle.hpp"

namespace frd::graph {

class oracle_backend final : public detect::reachability_backend {
 public:
  oracle_backend() : view_(*this) {}

  detect::reachability_view& view() override { return view_; }
  std::string_view name() const override { return "reference"; }

  const online_oracle& oracle() const { return oracle_; }

 protected:
  // execution_listener hooks: forward dag growth to the oracle, track the
  // strand the runtime is currently executing (the query's right-hand side).
  // Epoch bumping is handled by the reachability_backend base.
  void handle_program_begin(rt::func_id f, rt::strand_id s) override {
    current_ = s;
    oracle_.on_program_begin(f, s);
  }
  void handle_strand_begin(rt::strand_id s, rt::func_id) override {
    current_ = s;
  }
  void handle_spawn(rt::func_id p, rt::strand_id u, rt::func_id c,
                    rt::strand_id w, rt::strand_id v) override {
    oracle_.on_spawn(p, u, c, w, v);
  }
  void handle_create(rt::func_id p, rt::strand_id u, rt::func_id c,
                     rt::strand_id w, rt::strand_id v) override {
    oracle_.on_create(p, u, c, w, v);
  }
  void handle_sync(const sync_event& e) override { oracle_.on_sync(e); }
  void handle_get(rt::func_id fn, rt::strand_id u, rt::strand_id v,
                  rt::func_id fut, rt::strand_id w,
                  rt::strand_id creator) override {
    oracle_.on_get(fn, u, v, fut, w, creator);
  }

 private:
  // The whole batch answers against the current strand's one ancestor row:
  // a bit test per unique strand.
  class anc_row_view final : public detect::reachability_view {
   public:
    explicit anc_row_view(oracle_backend& owner)
        : reachability_view(owner), owner_(owner) {}
    void query(std::span<const rt::strand_id> strands,
               std::span<bool> out) override {
      const bitvec* row = owner_.oracle_.anc_row(owner_.current_);
      detect::answer_strand_batch(strands, out, scratch_,
                                  [row](rt::strand_id u) {
                                    return row != nullptr && row->size() > u &&
                                           row->test(u);
                                  });
    }

   private:
    oracle_backend& owner_;
    detect::batch_scratch scratch_;
  };

  online_oracle oracle_;
  rt::strand_id current_ = rt::kNoStrand;
  anc_row_view view_;
};

}  // namespace frd::graph
