#include "graph/dag_recorder.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace frd::graph {

dag_recorder::node& dag_recorder::ensure(rt::strand_id s) {
  if (s >= nodes_.size()) {
    nodes_.resize(s + 1);
    preds_.resize(s + 1);
  }
  return nodes_[s];
}

void dag_recorder::add_edge(rt::strand_id from, rt::strand_id to, edge_kind k) {
  ensure(from);
  ensure(to);
  edges_.push_back(edge{from, to, k});
  preds_[to].push_back(from);
}

std::size_t dag_recorder::count(edge_kind k) const {
  return static_cast<std::size_t>(
      std::count_if(edges_.begin(), edges_.end(),
                    [k](const edge& e) { return e.kind == k; }));
}

void dag_recorder::on_program_begin(rt::func_id f, rt::strand_id s) {
  ensure(s).owner = f;
  first_ = s;
}

void dag_recorder::on_program_end(rt::strand_id s) { last_ = s; }

void dag_recorder::on_strand_begin(rt::strand_id s, rt::func_id f) {
  node& n = ensure(s);
  n.owner = f;
  n.executed = true;
}

void dag_recorder::on_spawn(rt::func_id, rt::strand_id u, rt::func_id c,
                            rt::strand_id w, rt::strand_id v) {
  ensure(w).owner = c;
  add_edge(u, w, edge_kind::spawn);
  add_edge(u, v, edge_kind::continuation);
}

void dag_recorder::on_create(rt::func_id, rt::strand_id u, rt::func_id c,
                             rt::strand_id w, rt::strand_id v) {
  ensure(w).owner = c;
  add_edge(u, w, edge_kind::create);
  add_edge(u, v, edge_kind::continuation);
}

void dag_recorder::on_sync(const sync_event& e) {
  const std::size_t c = e.children.size();
  FRD_CHECK(e.join_strands.size() == c);
  rt::strand_id t2 = e.before;
  for (std::size_t i = 0; i < c; ++i) {
    const rt::child_record& child = e.children[c - 1 - i];
    const rt::strand_id j = e.join_strands[i];
    node& n = ensure(j);
    n.owner = e.fn;
    n.virtual_join = i + 1 != c;  // the outermost join is the real strand
    add_edge(child.child_last, j, edge_kind::join);
    add_edge(t2, j, edge_kind::continuation);
    t2 = j;
  }
}

void dag_recorder::on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v,
                          rt::func_id, rt::strand_id w, rt::strand_id) {
  ensure(v).owner = fn;
  add_edge(u, v, edge_kind::continuation);
  add_edge(w, v, edge_kind::get);
}

}  // namespace frd::graph
