// online_oracle is header-only; this TU exists so the library has a home for
// future out-of-line oracle variants (e.g. a space-efficient offline oracle).
#include "graph/oracle.hpp"
