// Exact online reachability oracle.
//
// Because the detector's execution order is depth-first and eager, every
// edge's source strand has fully executed before its destination is minted,
// so ancestor sets can be closed incrementally: when strand s appears with
// predecessors {p...}, anc(s) = U anc(p) ∪ {p...}. Quadratic space — this is
// a *validation* oracle for tests (it is what Theorems 4.2/5.2 are checked
// against), not a production structure.
#pragma once

#include <vector>

#include "runtime/events.hpp"
#include "support/bitvec.hpp"

namespace frd::graph {

class online_oracle final : public rt::execution_listener {
 public:
  // Strict precedence u ≺ v in G_full.
  bool precedes(rt::strand_id u, rt::strand_id v) const {
    if (v >= anc_.size()) return false;
    const bitvec& row = anc_[v];
    return row.size() > u && row.test(u);
  }

  bool parallel(rt::strand_id u, rt::strand_id v) const {
    return u != v && !precedes(u, v) && !precedes(v, u);
  }

  // v's full ancestor row (null when v is unknown); bit u set iff u ≺ v.
  // Reference valid until the next dag event. The oracle backend's batched
  // view answers a whole batch against this one row.
  const bitvec* anc_row(rt::strand_id v) const {
    return v < anc_.size() ? &anc_[v] : nullptr;
  }

  std::size_t strand_count() const { return anc_.size(); }

  // execution_listener
  void on_program_begin(rt::func_id, rt::strand_id s) override { ensure(s); }
  void on_spawn(rt::func_id, rt::strand_id u, rt::func_id, rt::strand_id w,
                rt::strand_id v) override {
    derive(w, u);
    derive(v, u);
  }
  void on_create(rt::func_id, rt::strand_id u, rt::func_id, rt::strand_id w,
                 rt::strand_id v) override {
    derive(w, u);
    derive(v, u);
  }
  void on_sync(const sync_event& e) override {
    rt::strand_id t2 = e.before;
    const std::size_t c = e.children.size();
    for (std::size_t i = 0; i < c; ++i) {
      const rt::strand_id j = e.join_strands[i];
      derive(j, e.children[c - 1 - i].child_last);
      merge(j, t2);
      t2 = j;
    }
  }
  void on_get(rt::func_id, rt::strand_id u, rt::strand_id v, rt::func_id,
              rt::strand_id w, rt::strand_id) override {
    derive(v, u);
    merge(v, w);
  }

 private:
  void ensure(rt::strand_id s) {
    if (s >= anc_.size()) anc_.resize(s + 1);
  }
  // anc(s) := anc(p) ∪ {p} (first predecessor).
  void derive(rt::strand_id s, rt::strand_id p) {
    ensure(s);
    anc_[s] = anc_[p];
    if (anc_[s].size() <= p) anc_[s].resize(p + 1);
    anc_[s].set(p);
  }
  // anc(s) |= anc(p) ∪ {p} (additional predecessor).
  void merge(rt::strand_id s, rt::strand_id p) {
    ensure(s);
    anc_[s].or_with(anc_[p]);
    if (anc_[s].size() <= p) anc_[s].resize(p + 1);
    anc_[s].set(p);
  }

  std::vector<bitvec> anc_;
};

}  // namespace frd::graph
