#include "graph/reference_detector.hpp"

namespace frd::graph {

void reference_detector::on_access(std::uintptr_t addr, std::size_t bytes,
                                   bool write, rt::strand_id current) {
  const std::uintptr_t first = addr & ~std::uintptr_t{3};
  const std::uintptr_t last =
      (addr + (bytes ? bytes : 1) - 1) & ~std::uintptr_t{3};
  for (std::uintptr_t a = first; a <= last; a += 4)
    check_granule(a, write, current);
}

void reference_detector::check_granule(std::uintptr_t granule_addr, bool write,
                                       rt::strand_id current) {
  std::vector<access>& log = log_[granule_addr];
  for (const access& prior : log) {
    if (!prior.write && !write) continue;  // read/read never races
    if (prior.strand == current) continue;
    if (oracle_.parallel(prior.strand, current)) {
      ++race_pairs_;
      racy_.insert(granule_addr);
    }
  }
  // Dedupe identical consecutive entries to keep the log (and the quadratic
  // check) small; a strand's accesses are contiguous in serial execution.
  if (log.empty() || log.back().strand != current || log.back().write != write)
    log.push_back(access{current, write});
}

const std::vector<reference_detector::access>& reference_detector::accessors_of(
    std::uintptr_t granule_addr) const {
  static const std::vector<access> kEmpty;
  auto it = log_.find(granule_addr);
  return it == log_.end() ? kEmpty : it->second;
}

}  // namespace frd::graph
