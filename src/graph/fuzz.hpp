// Random task-parallel program generator for oracle-checked property tests.
//
// The program is generated *during* its own depth-first eager execution:
// a body is a random sequence of {access, spawn, create_fut, get_fut, sync}
// actions. Because a future handle enters the candidate pool only after its
// eager execution finished, every generated program is forward-pointing by
// construction (paper §2), and the structured mode's inheritance rule
// (a body may only get handles it created itself or that existed in its
// parent when the body was forked) guarantees creator ≺ getter.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "runtime/serial.hpp"
#include "support/prng.hpp"

namespace frd::graph {

struct fuzz_config {
  std::uint64_t seed = 1;
  bool structured = true;
  int max_depth = 5;
  int max_actions_per_body = 10;
  std::uint32_t n_cells = 6;
  std::size_t max_futures = 48;
  int max_touches_per_future = 3;  // general mode only
  // Action weights (relative).
  unsigned w_access = 6, w_spawn = 2, w_create = 2, w_get = 3, w_sync = 1;
};

class fuzzer {
 public:
  // acc(cell, is_write) performs the actual (instrumented) memory access.
  using access_fn = std::function<void(std::uint32_t cell, bool write)>;

  fuzzer(rt::serial_runtime& rt, fuzz_config cfg, access_fn acc)
      : rt_(rt), cfg_(cfg), acc_(std::move(acc)), rng_(cfg.seed) {}

  // Executes one random program under rt (which already carries whatever
  // listeners the test installed).
  void run();

  std::size_t futures_created() const { return futures_.size(); }
  std::uint64_t gets_performed() const { return gets_; }
  long long checksum() const { return checksum_; }  // anti-DCE accumulation

 private:
  void body(int depth, std::vector<std::uint32_t>& avail);
  void do_get(std::vector<std::uint32_t>& avail);

  rt::serial_runtime& rt_;
  const fuzz_config cfg_;
  access_fn acc_;
  prng rng_;
  std::deque<rt::future<int>> futures_;  // deque: stable addresses
  std::vector<int> touches_;
  std::uint64_t gets_ = 0;
  long long checksum_ = 0;
};

}  // namespace frd::graph
