// Random task-parallel program generator for oracle-checked property tests.
//
// Split into a PLAN phase and an EXECUTE phase so the same random program
// can run on any runtime (serial, parallel, online):
//
//   * plan_fuzz(cfg) simulates the generator exactly as the original
//     generate-during-execution fuzzer consumed its prng — in serial
//     depth-first eager order — and records the program as an action tree.
//     Because a future handle enters the candidate pool only after its
//     (simulated) eager execution finished, every planned program is
//     forward-pointing by construction (paper §2), and the structured
//     mode's inheritance rule (a body may only get handles it created
//     itself or that existed in its parent when the body was forked)
//     guarantees creator ≺ getter.
//
//   * run_fuzz_plan(rt, plan, acc) replays the action tree on any runtime.
//     Under the serial runtime the replay issues the identical sequence of
//     runtime calls the old fuzzer made, so recorded traces stay
//     byte-identical seed-for-seed. Under a parallel runtime a general-mode
//     get may execute before its target's create action has run (the plan
//     only orders them in the serial elision), so each future slot carries
//     a created flag the getter helps-until on.
//
// The fuzzer class below wraps both phases behind the original serial API.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/serial.hpp"
#include "support/prng.hpp"

namespace frd::graph {

struct fuzz_config {
  std::uint64_t seed = 1;
  bool structured = true;
  int max_depth = 5;
  int max_actions_per_body = 10;
  std::uint32_t n_cells = 6;
  std::size_t max_futures = 48;
  int max_touches_per_future = 3;  // general mode only
  // Action weights (relative).
  unsigned w_access = 6, w_spawn = 2, w_create = 2, w_get = 3, w_sync = 1;
};

// acc(cell, is_write) performs the actual (instrumented) memory access.
using access_fn = std::function<void(std::uint32_t cell, bool write)>;

// One random program, fully determined by fuzz_config: a tree of bodies
// (bodies[0] is the root program; the rest run as spawn or future tasks),
// each a flat action list replayed in order.
struct fuzz_plan {
  enum class action_kind : std::uint8_t { access, spawn, create, get, sync };
  struct action {
    action_kind kind;
    std::uint32_t cell = 0;    // access
    bool write = false;        // access
    std::uint32_t body = 0;    // spawn/create: index into bodies
    std::uint32_t future = 0;  // create/get: future slot index
  };
  struct body {
    std::vector<action> actions;
    int ret = 0;  // future bodies: the value the body returns
  };
  std::vector<body> bodies;
  bool structured = true;
  std::size_t n_futures = 0;
  // What the serial elision computes — invariants any execution must match.
  std::uint64_t expected_gets = 0;
  long long expected_checksum = 0;
};

// Simulates the generator (consuming cfg.seed's prng exactly as the
// generate-during-execution fuzzer did) and returns the recorded program.
fuzz_plan plan_fuzz(const fuzz_config& cfg);

struct fuzz_result {
  std::size_t futures_created = 0;
  std::uint64_t gets = 0;
  long long checksum = 0;  // anti-DCE accumulation
};

// Replays `plan` on any runtime exposing the shared surface. The access
// callback must be safe to invoke from scheduler workers when RT is a
// parallel runtime (hook-sink notification is; see detect/hooks.hpp).
template <typename RT>
fuzz_result run_fuzz_plan(RT& rt, const fuzz_plan& plan, const access_fn& acc) {
  rt.enforce_single_touch(plan.structured);
  std::atomic<std::uint64_t> gets{0};
  std::atomic<long long> checksum{0};
  std::vector<typename RT::template future_of<int>> futs(plan.n_futures);
  // created[i] publishes futs[i]: the release store pairs with the getter's
  // acquire load, so helping until the flag is set also makes the handle
  // slot itself safe to read. Under serial eager execution the flag is
  // always already set (plan order == execution order).
  std::vector<std::atomic<bool>> created(plan.n_futures);

  // exec must outlive the root body: a planned future nobody gets is only
  // forced by the final quiesce, which runs after the root body's frame is
  // gone — so the recursive walker lives here, not inside rt.run's body.
  std::function<void(std::uint32_t)> exec;
  exec = [&](std::uint32_t bi) {
    for (const fuzz_plan::action& a : plan.bodies[bi].actions) {
      switch (a.kind) {
        case fuzz_plan::action_kind::access:
          acc(a.cell, a.write);
          break;
        case fuzz_plan::action_kind::spawn:
          rt.spawn([&, b = a.body] { exec(b); });
          break;
        case fuzz_plan::action_kind::create:
          futs[a.future] = rt.create_future(
              [&, b = a.body, r = plan.bodies[a.body].ret]() -> int {
                exec(b);
                return r;
              });
          created[a.future].store(true, std::memory_order_release);
          break;
        case fuzz_plan::action_kind::get:
          rt.help_until([&] {
            return created[a.future].load(std::memory_order_acquire);
          });
          checksum.fetch_add(futs[a.future].get(), std::memory_order_relaxed);
          gets.fetch_add(1, std::memory_order_relaxed);
          break;
        case fuzz_plan::action_kind::sync:
          rt.sync();
          break;
      }
    }
  };
  rt.run([&] { exec(0); });

  fuzz_result res;
  res.futures_created = plan.n_futures;
  res.gets = gets.load(std::memory_order_relaxed);
  res.checksum = checksum.load(std::memory_order_relaxed);
  return res;
}

// Original serial-only surface, now a thin wrapper over plan + replay.
class fuzzer {
 public:
  using access_fn = graph::access_fn;

  fuzzer(rt::serial_runtime& rt, fuzz_config cfg, access_fn acc)
      : rt_(rt), cfg_(cfg), acc_(std::move(acc)) {}

  // Executes one random program under rt (which already carries whatever
  // listeners the test installed).
  void run() { res_ = run_fuzz_plan(rt_, plan_fuzz(cfg_), acc_); }

  std::size_t futures_created() const { return res_.futures_created; }
  std::uint64_t gets_performed() const { return res_.gets; }
  long long checksum() const { return res_.checksum; }

 private:
  rt::serial_runtime& rt_;
  const fuzz_config cfg_;
  access_fn acc_;
  fuzz_result res_;
};

}  // namespace frd::graph
