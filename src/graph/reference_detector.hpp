// Reference (naive) race detector: keeps the *complete* access history of
// every granule and checks each new access against all prior accessors with
// the exact oracle. Quadratic — validation only. The property tests compare
// its racy-granule set against FutureRD's: the paper's reader-list purging
// provably preserves exactly the per-location "has a race" verdict (§3).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "graph/oracle.hpp"
#include "runtime/events.hpp"

namespace frd::graph {

class reference_detector {
 public:
  explicit reference_detector(const online_oracle& oracle) : oracle_(oracle) {}

  void on_access(std::uintptr_t addr, std::size_t bytes, bool write,
                 rt::strand_id current);

  const std::set<std::uintptr_t>& racy_granules() const { return racy_; }
  std::uint64_t race_pairs() const { return race_pairs_; }

  // All strands that ever accessed the granule holding addr (tests iterate
  // these to cross-check every reachability query).
  struct access {
    rt::strand_id strand;
    bool write;
  };
  const std::vector<access>& accessors_of(std::uintptr_t granule_addr) const;

 private:
  void check_granule(std::uintptr_t granule_addr, bool write,
                     rt::strand_id current);

  const online_oracle& oracle_;
  std::map<std::uintptr_t, std::vector<access>> log_;
  std::set<std::uintptr_t> racy_;
  std::uint64_t race_pairs_ = 0;
};

}  // namespace frd::graph
