#include "graph/fuzz.hpp"

namespace frd::graph {

void fuzzer::run() {
  rt_.enforce_single_touch(cfg_.structured);
  rt_.run([this] {
    std::vector<std::uint32_t> avail;

    // Prologue: every program starts with one future that conflicts with the
    // root on cell 0, so no seed produces a vacuous (query-free) run.
    acc_(0, /*write=*/true);
    futures_.push_back(rt_.create_future([this]() -> int {
      acc_(0, /*write=*/false);
      acc_(0, /*write=*/true);
      return 1;
    }));
    touches_.push_back(0);
    avail.push_back(0);

    body(0, avail);

    // Finale: sweep-read everything, join every still-untouched future the
    // root may legally join, then sweep-write — the writes check the whole
    // reader lists accumulated across the program.
    for (std::uint32_t c = 0; c < cfg_.n_cells; ++c) acc_(c, false);
    rt_.sync();
    if (cfg_.structured) {
      for (std::uint32_t idx : avail)
        if (touches_[idx] == 0) {
          ++touches_[idx];
          ++gets_;
          checksum_ += futures_[idx].get();
        }
    } else {
      for (std::uint32_t idx = 0; idx < futures_.size(); ++idx)
        if (touches_[idx] == 0) {
          ++touches_[idx];
          ++gets_;
          checksum_ += futures_[idx].get();
        }
    }
    for (std::uint32_t c = 0; c < cfg_.n_cells; ++c) acc_(c, true);
  });
}

void fuzzer::body(int depth, std::vector<std::uint32_t>& avail) {
  const int actions = static_cast<int>(rng_.range(1, cfg_.max_actions_per_body));
  for (int i = 0; i < actions; ++i) {
    const bool can_nest = depth < cfg_.max_depth;
    const bool can_create = can_nest && futures_.size() < cfg_.max_futures;
    const unsigned w_spawn = can_nest ? cfg_.w_spawn : 0;
    const unsigned w_create = can_create ? cfg_.w_create : 0;
    const unsigned total =
        cfg_.w_access + w_spawn + w_create + cfg_.w_get + cfg_.w_sync;
    std::uint64_t pick = rng_.below(total);

    if (pick < cfg_.w_access) {
      const auto cell = static_cast<std::uint32_t>(rng_.below(cfg_.n_cells));
      acc_(cell, rng_.chance(1, 2));
      continue;
    }
    pick -= cfg_.w_access;

    if (pick < w_spawn) {
      // The child inherits a snapshot of the currently available handles.
      rt_.spawn([this, depth, snapshot = avail]() mutable {
        body(depth + 1, snapshot);
      });
      continue;
    }
    pick -= w_spawn;

    if (pick < w_create) {
      auto fut = rt_.create_future(
          [this, depth, snapshot = avail]() mutable -> int {
            body(depth + 1, snapshot);
            return static_cast<int>(futures_.size());
          });
      // Nested creates already pushed theirs (eager execution), so the index
      // is assigned at push time, after the future completed.
      futures_.push_back(std::move(fut));
      touches_.push_back(0);
      avail.push_back(static_cast<std::uint32_t>(futures_.size() - 1));
      continue;
    }
    pick -= w_create;

    if (pick < cfg_.w_get) {
      do_get(avail);
      continue;
    }

    rt_.sync();
  }
}

void fuzzer::do_get(std::vector<std::uint32_t>& avail) {
  if (cfg_.structured) {
    // Candidates: inherited/own handles not yet touched anywhere.
    std::vector<std::uint32_t> cands;
    for (std::uint32_t idx : avail)
      if (touches_[idx] == 0) cands.push_back(idx);
    if (cands.empty()) return;
    const std::uint32_t idx = cands[rng_.below(cands.size())];
    ++touches_[idx];
    ++gets_;
    checksum_ += futures_[idx].get();
    return;
  }
  // General mode: any completed future, bounded multi-touch.
  std::vector<std::uint32_t> cands;
  for (std::uint32_t idx = 0; idx < futures_.size(); ++idx)
    if (touches_[idx] < cfg_.max_touches_per_future) cands.push_back(idx);
  if (cands.empty()) return;
  const std::uint32_t idx = cands[rng_.below(cands.size())];
  ++touches_[idx];
  ++gets_;
  checksum_ += futures_[idx].get();
}

}  // namespace frd::graph
