#include "graph/fuzz.hpp"

namespace frd::graph {

namespace {

// Simulation of the original generate-during-execution fuzzer. Every prng
// draw below happens at the exact point (relative to simulated depth-first
// eager execution) the old code drew it, so each seed plans the very same
// program the old fuzzer generated — the corpus goldens depend on that.
class planner {
 public:
  explicit planner(const fuzz_config& cfg) : cfg_(cfg), rng_(cfg.seed) {
    plan_.structured = cfg.structured;
  }

  fuzz_plan build() {
    const std::uint32_t root = new_body();  // bodies[0]
    std::vector<std::uint32_t> avail;

    // Prologue: every program starts with one future that conflicts with
    // the root on cell 0, so no seed produces a vacuous (query-free) run.
    emit_access(root, 0, /*write=*/true);
    const std::uint32_t pro = new_body();
    emit_access(pro, 0, /*write=*/false);
    emit_access(pro, 0, /*write=*/true);
    plan_.bodies[pro].ret = 1;
    const std::uint32_t slot0 = push_future(1);
    emit_create(root, pro, slot0);
    avail.push_back(slot0);

    body(root, 0, avail);

    // Finale: sweep-read everything, join every still-untouched future the
    // root may legally join, then sweep-write — the writes check the whole
    // reader lists accumulated across the program.
    for (std::uint32_t c = 0; c < cfg_.n_cells; ++c)
      emit_access(root, c, false);
    emit_sync(root);
    if (cfg_.structured) {
      for (std::uint32_t idx : avail)
        if (touches_[idx] == 0) emit_get(root, idx);
    } else {
      for (std::uint32_t idx = 0; idx < rets_.size(); ++idx)
        if (touches_[idx] == 0) emit_get(root, idx);
    }
    for (std::uint32_t c = 0; c < cfg_.n_cells; ++c)
      emit_access(root, c, true);

    plan_.n_futures = rets_.size();
    return std::move(plan_);
  }

 private:
  std::uint32_t new_body() {
    plan_.bodies.emplace_back();
    return static_cast<std::uint32_t>(plan_.bodies.size() - 1);
  }
  std::uint32_t push_future(int ret) {
    rets_.push_back(ret);
    touches_.push_back(0);
    return static_cast<std::uint32_t>(rets_.size() - 1);
  }
  void emit_access(std::uint32_t b, std::uint32_t cell, bool write) {
    fuzz_plan::action a{fuzz_plan::action_kind::access};
    a.cell = cell;
    a.write = write;
    plan_.bodies[b].actions.push_back(a);
  }
  void emit_create(std::uint32_t b, std::uint32_t child, std::uint32_t slot) {
    fuzz_plan::action a{fuzz_plan::action_kind::create};
    a.body = child;
    a.future = slot;
    plan_.bodies[b].actions.push_back(a);
  }
  void emit_spawn(std::uint32_t b, std::uint32_t child) {
    fuzz_plan::action a{fuzz_plan::action_kind::spawn};
    a.body = child;
    plan_.bodies[b].actions.push_back(a);
  }
  void emit_get(std::uint32_t b, std::uint32_t idx) {
    ++touches_[idx];
    ++plan_.expected_gets;
    plan_.expected_checksum += rets_[idx];
    fuzz_plan::action a{fuzz_plan::action_kind::get};
    a.future = idx;
    plan_.bodies[b].actions.push_back(a);
  }
  void emit_sync(std::uint32_t b) {
    plan_.bodies[b].actions.push_back(
        fuzz_plan::action{fuzz_plan::action_kind::sync});
  }

  void body(std::uint32_t b, int depth, std::vector<std::uint32_t>& avail) {
    const int actions =
        static_cast<int>(rng_.range(1, cfg_.max_actions_per_body));
    for (int i = 0; i < actions; ++i) {
      const bool can_nest = depth < cfg_.max_depth;
      const bool can_create = can_nest && rets_.size() < cfg_.max_futures;
      const unsigned w_spawn = can_nest ? cfg_.w_spawn : 0;
      const unsigned w_create = can_create ? cfg_.w_create : 0;
      const unsigned total =
          cfg_.w_access + w_spawn + w_create + cfg_.w_get + cfg_.w_sync;
      std::uint64_t pick = rng_.below(total);

      if (pick < cfg_.w_access) {
        const auto cell = static_cast<std::uint32_t>(rng_.below(cfg_.n_cells));
        emit_access(b, cell, rng_.chance(1, 2));
        continue;
      }
      pick -= cfg_.w_access;

      if (pick < w_spawn) {
        // The child inherits a snapshot of the currently available handles;
        // its draws happen here, where serial eager execution ran it.
        const std::uint32_t child = new_body();
        std::vector<std::uint32_t> snapshot = avail;
        body(child, depth + 1, snapshot);
        emit_spawn(b, child);
        continue;
      }
      pick -= w_spawn;

      if (pick < w_create) {
        const std::uint32_t child = new_body();
        std::vector<std::uint32_t> snapshot = avail;
        body(child, depth + 1, snapshot);
        // The old body returned futures_.size() as of its own completion —
        // nested creates already pushed theirs, so that is exactly the slot
        // this future is about to occupy.
        const int ret = static_cast<int>(rets_.size());
        plan_.bodies[child].ret = ret;
        const std::uint32_t slot = push_future(ret);
        emit_create(b, child, slot);
        avail.push_back(slot);
        continue;
      }
      pick -= w_create;

      if (pick < cfg_.w_get) {
        do_get(b, avail);
        continue;
      }

      emit_sync(b);
    }
  }

  void do_get(std::uint32_t b, std::vector<std::uint32_t>& avail) {
    std::vector<std::uint32_t> cands;
    if (cfg_.structured) {
      // Candidates: inherited/own handles not yet touched anywhere.
      for (std::uint32_t idx : avail)
        if (touches_[idx] == 0) cands.push_back(idx);
    } else {
      // General mode: any completed future, bounded multi-touch.
      for (std::uint32_t idx = 0; idx < rets_.size(); ++idx)
        if (touches_[idx] < cfg_.max_touches_per_future) cands.push_back(idx);
    }
    if (cands.empty()) return;
    emit_get(b, cands[rng_.below(cands.size())]);
  }

  const fuzz_config& cfg_;
  prng rng_;
  fuzz_plan plan_;
  std::vector<int> touches_;
  std::vector<int> rets_;
};

}  // namespace

fuzz_plan plan_fuzz(const fuzz_config& cfg) { return planner(cfg).build(); }

}  // namespace frd::graph
