// Records the computation dag G_full as it unfolds (paper §2): nodes are
// strands, edges are typed with the five-kind vocabulary of §5. Used by the
// validation tests (structure assertions, SP-ness checks) and by the
// reachability oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/events.hpp"

namespace frd::graph {

enum class edge_kind : std::uint8_t {
  continuation,  // within one function instance
  spawn,         // fork strand -> child's first strand
  create,        // creator strand -> future's first strand (non-SP)
  join,          // child's last strand -> sync join strand
  get,           // future's last strand -> getter strand (non-SP)
};

struct edge {
  rt::strand_id from;
  rt::strand_id to;
  edge_kind kind;
};

class dag_recorder final : public rt::execution_listener {
 public:
  struct node {
    rt::func_id owner = rt::kNoFunc;
    bool virtual_join = false;  // minted by the binary sync decomposition
    bool executed = false;      // saw on_strand_begin
  };

  std::size_t node_count() const { return nodes_.size(); }
  const node& node_at(rt::strand_id s) const { return nodes_[s]; }
  const std::vector<edge>& edges() const { return edges_; }
  const std::vector<std::vector<rt::strand_id>>& preds() const { return preds_; }
  rt::strand_id first_strand() const { return first_; }
  rt::strand_id last_strand() const { return last_; }

  // Counts by edge kind; a program is series-parallel iff it has no
  // create/get edges (paper §2: futures add exactly the non-SP edges).
  std::size_t count(edge_kind k) const;
  bool is_series_parallel() const {
    return count(edge_kind::create) == 0 && count(edge_kind::get) == 0;
  }

  // execution_listener
  void on_program_begin(rt::func_id f, rt::strand_id s) override;
  void on_program_end(rt::strand_id s) override;
  void on_strand_begin(rt::strand_id s, rt::func_id f) override;
  void on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                rt::strand_id v) override;
  void on_create(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                 rt::strand_id v) override;
  void on_sync(const sync_event& e) override;
  void on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v, rt::func_id fut,
              rt::strand_id w, rt::strand_id creator) override;

 private:
  node& ensure(rt::strand_id s);
  void add_edge(rt::strand_id from, rt::strand_id to, edge_kind k);

  std::vector<node> nodes_;
  std::vector<edge> edges_;
  std::vector<std::vector<rt::strand_id>> preds_;
  rt::strand_id first_ = rt::kNoStrand;
  rt::strand_id last_ = rt::kNoStrand;
};

}  // namespace frd::graph
