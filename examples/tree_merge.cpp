// Pipelined binary-search-tree merge (Blelloch & Reid-Miller) under both
// reachability algorithms.
//
//   $ ./examples/tree_merge --n1 200000 --n2 100000 --cutoff 10
//
// The structured resolver joins futures top-down (single-touch, creator
// before getter): MultiBags suffices. The general resolver joins bottom-up:
// handles are touched while their creators are still logically parallel —
// MultiBags would be unsound there (and says so via its discipline check);
// MultiBags+ handles it.
#include <cstdio>

#include "api/session.hpp"
#include "bench_suite/bst.hpp"
#include "support/flags.hpp"
#include "support/timer.hpp"

namespace det = frd::detect;
namespace rt = frd::rt;
using namespace frd::bench;

int main(int argc, char** argv) {
  frd::flag_parser flags(argc, argv);
  auto& n1 = flags.int_flag("n1", 200000, "nodes in the first tree");
  auto& n2 = flags.int_flag("n2", 100000, "nodes in the second tree");
  auto& cutoff = flags.int_flag("cutoff", 10, "future recursion depth");
  flags.parse();

  {  // structured join order, MultiBags
    auto in = make_bst_input(static_cast<std::size_t>(n1),
                             static_cast<std::size_t>(n2), 1);
    frd::session s("multibags");
    frd::wall_timer t;
    bst_node* merged = s.run([&](rt::serial_runtime& runtime) {
      return bst_structured<det::hooks::active>(runtime, in,
                                                static_cast<int>(cutoff));
    });
    std::printf("structured merge: %zu nodes, bst=%s, %.3fs, races=%llu, "
                "violations=%llu\n",
                bst_count(merged), bst_is_search_tree(merged) ? "yes" : "NO",
                t.seconds(),
                static_cast<unsigned long long>(s.report().total()),
                static_cast<unsigned long long>(s.structured_violations()));
  }

  {  // general join order, MultiBags+
    auto in = make_bst_input(static_cast<std::size_t>(n1),
                             static_cast<std::size_t>(n2), 1);
    frd::session s("multibags+");
    frd::wall_timer t;
    bst_node* merged = s.run([&](rt::serial_runtime& runtime) {
      return bst_general<det::hooks::active>(runtime, in,
                                             static_cast<int>(cutoff));
    });
    std::printf("general merge:    %zu nodes, bst=%s, %.3fs, races=%llu\n",
                bst_count(merged), bst_is_search_tree(merged) ? "yes" : "NO",
                t.seconds(),
                static_cast<unsigned long long>(s.report().total()));
  }
  return 0;
}
