// Quickstart: find a determinacy race in a program that uses futures.
//
//   $ ./quickstart
//
// The program below looks innocent: it creates a future, syncs its spawned
// child, and then writes a location the future also writes. But a sync does
// NOT join a future (that is the whole point of futures — they escape sync
// scopes), so the two writes are logically parallel: a determinacy race.
// FutureRD runs the program sequentially and reports it.
#include <cstdio>

#include "api/session.hpp"

namespace det = frd::detect;

// Shorthand for instrumented accesses. A real deployment would instrument
// loads/stores with a compiler pass; this library exposes the same hooks as
// explicit calls (see DESIGN.md). The calls route into whichever session is
// currently running.
using hooks = det::hooks::active;
template <typename T>
T ld(const T& x) { return det::hooks::ld<hooks>(x); }
template <typename T, typename V>
void st(T& x, V v) { det::hooks::st<hooks>(x, v); }

int main() {
  // A session = reachability backend (by registry name) + measurement level
  // + detection options, owning the runtime and the race report for one run.
  frd::session s(frd::session::options{.backend = "multibags",
                                       .level = frd::level::full,
                                       .granule = 4,
                                       .max_retained_races = 64});

  int shared = 0;

  s.run([&] {
    auto& runtime = s.runtime();
    auto fut = runtime.create_future([&] {
      st(shared, 1);  // first write, inside the future
      return 1;
    });

    runtime.spawn([&] { /* some other work */ });
    runtime.sync();  // joins the spawn — NOT the future!

    st(shared, 2);  // second write: logically parallel with the future

    fut.get();      // the future is only ordered from here on
    st(shared, 3);  // this write is safe
  });

  std::printf("backend %s (%s): races detected: %llu\n",
              std::string(s.backend_name()).c_str(),
              s.info().paper_section.c_str(),
              static_cast<unsigned long long>(s.report().total()));
  for (const auto& r : s.report().retained()) {
    std::printf("  race @%p: strand %u (%s) vs strand %u (%s)\n",
                reinterpret_cast<void*>(r.granule_addr), r.prior,
                r.prior_kind == det::access_kind::write ? "write" : "read",
                r.current,
                r.current_kind == det::access_kind::write ? "write" : "read");
  }

  if (!s.report().any()) {
    std::puts("unexpected: the race was missed!");
    return 1;
  }
  std::puts("as expected: sync does not join a future; get_fut does.");
  return 0;
}
