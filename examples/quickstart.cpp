// Quickstart: find a determinacy race in a program that uses futures.
//
//   $ ./examples/quickstart
//
// The program below looks innocent: it creates a future, syncs its spawned
// child, and then writes a location the future also writes. But a sync does
// NOT join a future (that is the whole point of futures — they escape sync
// scopes), so the two writes are logically parallel: a determinacy race.
// FutureRD runs the program sequentially and reports it.
#include <cstdio>

#include "detect/detector.hpp"
#include "runtime/serial.hpp"

namespace det = frd::detect;
namespace rt = frd::rt;

// Shorthand for instrumented accesses. A real deployment would instrument
// loads/stores with a compiler pass; this library exposes the same hooks as
// explicit calls (see DESIGN.md).
using hooks = det::hooks::active;
template <typename T>
T ld(const T& x) { return det::hooks::ld<hooks>(x); }
template <typename T, typename V>
void st(T& x, V v) { det::hooks::st<hooks>(x, v); }

int main() {
  // A detector = reachability algorithm + measurement level.
  det::detector detector(det::algorithm::multibags, det::level::full);
  det::scoped_global_detector bind(&detector);
  rt::serial_runtime runtime(&detector);

  int shared = 0;

  runtime.run([&] {
    auto fut = runtime.create_future([&] {
      st(shared, 1);  // first write, inside the future
      return 1;
    });

    runtime.spawn([&] { /* some other work */ });
    runtime.sync();  // joins the spawn — NOT the future!

    st(shared, 2);  // second write: logically parallel with the future

    fut.get();      // the future is only ordered from here on
    st(shared, 3);  // this write is safe
  });

  std::printf("races detected: %llu\n",
              static_cast<unsigned long long>(detector.report().total()));
  for (const auto& r : detector.report().retained()) {
    std::printf("  race @%p: strand %u (%s) vs strand %u (%s)\n",
                reinterpret_cast<void*>(r.granule_addr), r.prior,
                r.prior_kind == det::access_kind::write ? "write" : "read",
                r.current,
                r.current_kind == det::access_kind::write ? "write" : "read");
  }

  if (!detector.report().any()) {
    std::puts("unexpected: the race was missed!");
    return 1;
  }
  std::puts("as expected: sync does not join a future; get_fut does.");
  return 0;
}
