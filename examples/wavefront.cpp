// Wavefront DP with structured futures (the lcs kernel), three ways:
//
//   1. race-detected serial run (MultiBags, full detection),
//   2. plain serial run (no detection) for the baseline time,
//   3. a parallel run on the work-stealing runtime (detection off),
//      demonstrating that the same dependence structure actually scales.
//
//   $ ./examples/wavefront --n 1024 --base 64
#include <cstdio>
#include <vector>

#include "api/session.hpp"
#include "bench_suite/lcs.hpp"
#include "runtime/parallel.hpp"
#include "support/flags.hpp"
#include "support/timer.hpp"

namespace det = frd::detect;
namespace rt = frd::rt;
using namespace frd::bench;

namespace {

// Parallel wavefront on the work-stealing runtime: the general (one future
// per tile, multi-touch) shape — pfuture handles are shared-state, so both
// neighbours can join the same tile.
int lcs_parallel(rt::parallel_runtime& rt, const lcs_input& in,
                 std::size_t base) {
  const tile_grid g(in.a.size(), base);
  std::vector<std::int32_t> d((g.n + 1) * (g.n + 1), 0);
  int result = 0;
  rt.run([&] {
    std::vector<rt::pfuture<int>> fut(g.tiles * g.tiles);
    for (std::size_t ti = 0; ti < g.tiles; ++ti) {
      for (std::size_t tj = 0; tj < g.tiles; ++tj) {
        fut[g.index(ti, tj)] = rt.create_future([&, ti, tj]() -> int {
          if (ti > 0) {
            auto up = fut[g.index(ti - 1, tj)];
            rt.get(up);
          }
          if (tj > 0) {
            auto left = fut[g.index(ti, tj - 1)];
            rt.get(left);
          }
          detail::lcs_tile<det::hooks::none>(in, d, g, ti, tj);
          return 1;
        });
      }
    }
    auto last = fut[g.index(g.tiles - 1, g.tiles - 1)];
    rt.get(last);
    result = d[g.n * (g.n + 1) + g.n];
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  frd::flag_parser flags(argc, argv);
  auto& n = flags.int_flag("n", 1024, "string length");
  auto& base = flags.int_flag("base", 64, "tile side length");
  auto& workers = flags.int_flag("workers", 0, "parallel workers (0 = all)");
  flags.parse();

  const auto in = make_lcs_input(static_cast<std::size_t>(n), 2024);
  const int want = lcs_reference(in);
  std::printf("lcs(n=%lld, base=%lld), reference answer = %d\n",
              static_cast<long long>(n), static_cast<long long>(base), want);

  {  // 1. race detection
    frd::session s("multibags");
    frd::wall_timer t;
    const int got = s.run([&](rt::serial_runtime& srt) {
      return lcs_structured<det::hooks::active>(srt, in,
                                                static_cast<std::size_t>(base));
    });
    std::printf("  detected run:  %.3fs  answer=%d  races=%llu  "
                "discipline-violations=%llu\n",
                t.seconds(), got,
                static_cast<unsigned long long>(s.report().total()),
                static_cast<unsigned long long>(s.structured_violations()));
  }

  {  // 2. serial baseline
    rt::serial_runtime srt;
    frd::wall_timer t;
    const int got = lcs_structured<det::hooks::none>(
        srt, in, static_cast<std::size_t>(base));
    std::printf("  serial run:    %.3fs  answer=%d\n", t.seconds(), got);
  }

  {  // 3. parallel execution, detection off
    rt::parallel_runtime prt(static_cast<unsigned>(workers));
    frd::wall_timer t;
    const int got = lcs_parallel(prt, in, static_cast<std::size_t>(base));
    std::printf("  parallel run:  %.3fs  answer=%d  (workers=%u)\n",
                t.seconds(), got, prt.worker_count());
  }
  return 0;
}
