// Dedup-style pipeline with futures (the pattern fork-join cannot express).
//
//   $ ./examples/pipeline --mb 8 --redundancy 60
//
// Stage A chunks and fingerprints fragments in parallel; stage B is an
// ordered chain of futures serializing the shared dedup table and the
// output stream. The example runs the pipeline under full race detection
// (structured futures + MultiBags), prints pipeline statistics, and then
// shows what happens when the chain is removed: the dedup table races and
// FutureRD pinpoints it.
#include <cstdio>

#include "api/session.hpp"
#include "bench_suite/dedup.hpp"
#include "support/flags.hpp"
#include "support/timer.hpp"

namespace det = frd::detect;
namespace rt = frd::rt;
using namespace frd::bench;

int main(int argc, char** argv) {
  frd::flag_parser flags(argc, argv);
  auto& mb = flags.int_flag("mb", 8, "corpus size in MiB");
  auto& redundancy = flags.int_flag("redundancy", 60, "redundant data, %");
  flags.parse();

  const auto in = make_dedup_corpus(static_cast<std::size_t>(mb) << 20,
                                    static_cast<int>(redundancy), 7);
  const std::size_t fragment = 1 << 16;

  {  // The correct, chained pipeline.
    frd::session s("multibags");
    frd::wall_timer t;
    const auto res = s.run([&](rt::serial_runtime& runtime) {
      return dedup_pipeline<det::hooks::active, det::hooks::none>(runtime, in,
                                                                  fragment);
    });
    std::printf("pipeline: %zu fragments, %zu chunks, %zu unique (%.1f%%), "
                "%zu -> %zu bytes, %.3fs\n",
                res.fragments, res.total_chunks, res.unique_chunks,
                100.0 * static_cast<double>(res.unique_chunks) /
                    static_cast<double>(res.total_chunks ? res.total_chunks : 1),
                in.corpus.size(), res.compressed_bytes, t.seconds());
    std::printf("races: %llu (expected 0 — the chain orders the table)\n\n",
                static_cast<unsigned long long>(s.report().total()));
  }

  {  // The broken pipeline: stage B futures without the chain.
    frd::session s("multibags+");

    detail::dedup_table table(in.corpus.size() / 1024 + 64);
    s.run([&] {
      auto& runtime = s.runtime();
      std::vector<rt::future<int>> stage_b;
      const std::size_t n_frags = in.corpus.size() / fragment;
      for (std::size_t f = 0; f < n_frags; ++f) {
        stage_b.push_back(runtime.create_future([&, f]() -> int {
          const std::span<const std::uint8_t> frag(
              in.corpus.data() + f * fragment, fragment);
          for (const auto& c : frd::compress::chunk_bytes(frag)) {
            const std::span<const std::uint8_t> chunk(frag.data() + c.offset,
                                                      c.size);
            table.insert<det::hooks::active>(
                frd::compress::sha1_key64(frd::compress::sha1(chunk)));
          }
          return 1;
        }));
      }
      for (auto& f : stage_b) f.get();
    });
    std::printf("without the ordering chain: %llu races on %zu table slots\n",
                static_cast<unsigned long long>(s.report().total()),
                s.report().racy_granules().size());
    if (!s.report().any())
      std::puts("(corpus had no repeated chunks this run; raise --redundancy)");
  }
  return 0;
}
