// Online race detection on the work-stealing parallel runtime:
//
//   1. the lcs wavefront runs LIVE on the parallel scheduler with full
//      detection attached (no trace file, no separate replay step) — the
//      per-worker rings feed the canonical-walk pump, which drives the
//      same detector the serial runs use,
//   2. the run simultaneously records its arbitration order, and a serial
//      replay of that recording reproduces the online report — the
//      conformance oracle you can run yourself,
//   3. a deliberately racy program shows the online path reporting races
//      as the program executes in parallel.
//
//   $ ./examples/online --n 512 --base 32 --workers 4
#include <cstdio>

#include "api/session.hpp"
#include "bench_suite/lcs.hpp"
#include "support/flags.hpp"
#include "support/timer.hpp"
#include "trace/event.hpp"

namespace det = frd::detect;
using namespace frd::bench;

int main(int argc, char** argv) {
  frd::flag_parser flags(argc, argv);
  auto& n = flags.int_flag("n", 512, "string length");
  auto& base = flags.int_flag("base", 32, "tile side length");
  auto& workers = flags.int_flag("workers", 4, "scheduler width (0 = all)");
  flags.parse();

  const auto in = make_lcs_input(static_cast<std::size_t>(n), 2024);
  const int want = lcs_reference(in);
  std::printf("lcs(n=%lld, base=%lld), reference answer = %d\n",
              static_cast<long long>(n), static_cast<long long>(base), want);

  // 1 + 2. Online run, recording the arbitration order as it streams.
  frd::trace::memory_trace tape(
      frd::trace::trace_header{frd::trace::kTraceVersion, 4});
  frd::session online(
      frd::session::options{.backend = "multibags",
                            .runtime = frd::runtime_kind::parallel,
                            .runtime_workers = static_cast<unsigned>(workers)});
  online.record_to(tape);
  frd::wall_timer t;
  int got = 0;
  online.run([&](auto& rt) {
    got = lcs_structured<det::hooks::active>(rt, in,
                                             static_cast<std::size_t>(base));
  });
  std::printf("  online run:    %.3fs  answer=%d  races=%llu  (parallel, "
              "detection live)\n",
              t.seconds(), got,
              static_cast<unsigned long long>(online.report().total()));

  // The oracle: serial replay of the recording must agree byte-for-byte.
  frd::session replay(frd::session::options{.backend = "multibags"});
  replay.replay(tape);
  std::printf("  serial replay: races=%llu  %s\n",
              static_cast<unsigned long long>(replay.report().total()),
              replay.report().racy_granules() ==
                      online.report().racy_granules()
                  ? "(identical to the online report)"
                  : "(DIVERGED — this is a bug)");

  // 3. A racy program, detected while it runs in parallel: the future
  //    writes cells[0] while the spawn continuation writes it too, with no
  //    ordering edge between them.
  static int cells[2];
  frd::session racy(
      frd::session::options{.runtime = frd::runtime_kind::parallel,
                            .runtime_workers = static_cast<unsigned>(workers)});
  racy.run([&](auto& rt) {
    rt.run([&] {
      auto f = rt.create_future([&] {
        racy.write(&cells[0]);
        return 0;
      });
      racy.write(&cells[0]);
      rt.sync();
      f.get();
    });
  });
  std::printf("  racy program:  races=%llu (expected 1)\n",
              static_cast<unsigned long long>(racy.report().total()));
  return 0;
}
